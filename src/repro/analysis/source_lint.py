"""Source-level determinism lint (S rules): an AST pass over src/repro.

Every determinism gate downstream — byte-identical chaos replays,
sha256 bench checksums, the H-family dual replay — assumes the *source*
never consults ambient nondeterminism.  This module checks that
assumption mechanically:

* **S001** ambient RNG: ``np.random.*`` module functions or stdlib
  ``random.*`` calls (a pinned ``np.random.default_rng(seed)``
  Generator is the sanctioned idiom; ``default_rng()`` with no seed is
  still ambient).
* **S002** wall-clock reads: ``time.time``/``perf_counter``/
  ``datetime.now`` and friends — simulation state must derive from the
  event clock, and even measurement helpers must be pragma-audited.
* **S003** iteration over an unordered collection (``set``,
  ``dict.values()/.keys()/.items()``) whose body mutates outer state
  (``+=``, ``.append``/``.extend``) or that feeds an accumulation
  (``sum``/``fsum``/``join``) — iteration order leaks into results.
* **S004** ordering keyed on ``id()`` — addresses vary across runs.
* **S005** mutable default arguments in public functions.
* **S006** the float-flavoured subset of S003: accumulation whose
  operands involve division, float literals or ``float()`` — IEEE
  addition does not commute, so hash-order sums drift bit-by-bit.

Suppression is per-line and per-rule, via a ``repro: allow`` comment
naming the rule (e.g. ``allow S00x audited: <why>`` with the x filled
in).  The pragma must carry a reason (a bare ``allow S00x`` is ignored
and flagged), may sit on the offending line or the line above,
and an *unused* pragma is itself a warning — suppressions cannot
outlive the hazard they excuse.

``check_source_tree`` sweeps the installed ``repro`` package;
``check_source_fixtures`` reconciles the deliberately-hazardous
snippets in :mod:`repro.analysis.fixtures_source` against their
``EXPECTED`` manifest exactly like the broken recovery policies: an
expected rule that fails to fire is an ERROR (the checker regressed).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import (
    Finding,
    Report,
    Rule,
    Severity,
    reconcile_expected,
    register_rules,
)

__all__ = [
    "lint_source_text",
    "lint_source_file",
    "check_source_tree",
    "check_source_fixtures",
    "check_source",
]

register_rules(
    "S", "source determinism hazards", __name__, "--source",
    [
        Rule("S001", "ambient-rng", Severity.ERROR,
             "unseeded/ambient RNG call (np.random.* module functions or "
             "random.* without a pinned Generator) — results change run "
             "to run"),
        Rule("S002", "wall-clock-read", Severity.ERROR,
             "wall-clock read (time.time, datetime.now, ...) in simulation "
             "code — observable state must derive from the event clock"),
        Rule("S003", "unordered-iteration-mutates", Severity.ERROR,
             "loop over an unordered collection (set, dict.values()/.keys()"
             ") whose body mutates state or accumulates floats — iteration "
             "order leaks into results"),
        Rule("S004", "identity-ordered-sort", Severity.ERROR,
             "sorting/ordering keyed on id() or object identity — addresses "
             "vary across runs and interpreters"),
        Rule("S005", "mutable-default-arg", Severity.WARNING,
             "mutable default argument in a public API — call-order state "
             "leaks between invocations"),
        Rule("S006", "unordered-float-accumulation", Severity.ERROR,
             "float accumulation whose order depends on an unordered "
             "source — IEEE addition does not commute, sums drift with "
             "hash order"),
    ],
)

PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\s+(S\d{3})\b[ \t]*(.*)")

#: ``numpy.random`` attributes that construct *pinned* generators
#: rather than reading ambient stream state.
_PINNED_RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "MT19937",
    "BitGenerator",
}

#: Wall-clock reads (fully resolved dotted names).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Accumulation consumers: order-sensitive folds over their argument.
_ACCUMULATORS = {"sum", "math.fsum"}

_UNORDERED_METHODS = {"values", "keys", "items"}


class _Pragma:
    def __init__(self, rule_id: str, reason: str, line: int) -> None:
        self.rule_id = rule_id
        self.reason = reason.strip()
        self.line = line
        self.used = False


def _collect_pragmas(text: str) -> List[_Pragma]:
    pragmas = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = PRAGMA_RE.search(line)
        if m:
            pragmas.append(_Pragma(m.group(1), m.group(2), lineno))
    return pragmas


class _Visitor(ast.NodeVisitor):
    """One pass over a module; findings accumulate in ``self.findings``."""

    def __init__(self, subject: str) -> None:
        self.subject = subject
        self.findings: List[Finding] = []
        #: local alias -> canonical dotted module path
        self.aliases: Dict[str, str] = {}

    # ---- emit ------------------------------------------------------------------------

    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id,
                message,
                subject=self.subject,
                location=getattr(node, "lineno", None),
            )
        )

    # ---- imports and name resolution -------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain with aliases expanded."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # ---- S001 / S002 / S004 ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            self._check_rng(node, resolved)
            if resolved in _WALL_CLOCK:
                self._flag(
                    "S002", node,
                    f"wall-clock read {resolved}() — derive time from the "
                    "event clock (or pragma-audit measurement code)",
                )
        for kw in node.keywords:
            if kw.arg == "key" and self._mentions_id(kw.value):
                self._flag(
                    "S004", node,
                    "ordering keyed on id() — object addresses differ "
                    "across runs; key on a stable field instead",
                )
        self._check_accumulation(node, resolved)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, resolved: str) -> None:
        if resolved.startswith("numpy.random."):
            leaf = resolved.rsplit(".", 1)[1]
            if leaf not in _PINNED_RNG_CONSTRUCTORS:
                self._flag(
                    "S001", node,
                    f"ambient RNG {resolved}() — draw from a pinned "
                    "np.random.default_rng(seed) Generator instead",
                )
            elif leaf == "default_rng" and not (node.args or node.keywords):
                self._flag(
                    "S001", node,
                    "np.random.default_rng() without a seed is entropy-"
                    "seeded — pass an explicit seed",
                )
        elif resolved == "random" or resolved.startswith("random."):
            leaf = resolved.rsplit(".", 1)[-1]
            if leaf == "Random" and (node.args or node.keywords):
                return  # random.Random(seed) is pinned
            self._flag(
                "S001", node,
                f"stdlib {resolved}() reads the shared ambient stream — "
                "use a pinned np.random.default_rng(seed)",
            )

    @staticmethod
    def _mentions_id(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
            if isinstance(sub, ast.Name) and sub.id == "id":
                # bare ``key=id``
                return True
        return False

    # ---- unordered sources -----------------------------------------------------------

    def _is_unordered(self, node: ast.AST) -> Optional[str]:
        """Describe ``node`` if its iteration order is unordered."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
            ):
                return "set(...)"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _UNORDERED_METHODS
                and not node.args
                and not node.keywords
            ):
                return f".{node.func.attr}()"
        return None

    def _unordered_in_comprehension(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in node.generators:
                desc = self._is_unordered(gen.iter)
                if desc is not None:
                    return desc
        return self._is_unordered(node)

    @staticmethod
    def _float_flavoured(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False

    # ---- S003 / S006: accumulation consumers -----------------------------------------

    def _check_accumulation(
        self, node: ast.Call, resolved: Optional[str]
    ) -> None:
        is_join = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if resolved not in _ACCUMULATORS and not is_join:
            return
        if not node.args:
            return
        desc = self._unordered_in_comprehension(node.args[0])
        if desc is None:
            return
        what = resolved if resolved in _ACCUMULATORS else "join"
        if self._float_flavoured(node):
            self._flag(
                "S006", node,
                f"float accumulation {what}(...) over unordered {desc} — "
                "IEEE sums drift with hash order; iterate sorted keys",
            )
        else:
            self._flag(
                "S003", node,
                f"accumulation {what}(...) over unordered {desc} — make "
                "the fold order explicit (sorted keys)",
            )

    # ---- S003: mutating loops --------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        desc = self._is_unordered(node.iter)
        if desc is not None:
            loop_names = {
                n.id
                for n in ast.walk(node.target)
                if isinstance(n, ast.Name)
            }
            mutated = self._body_mutations(node.body, loop_names)
            if mutated:
                self._flag(
                    "S003", node,
                    f"loop over unordered {desc} mutates {mutated!r} — "
                    "iteration order leaks into state; iterate sorted "
                    "keys or an ordered sequence",
                )
        self.generic_visit(node)

    @staticmethod
    def _body_mutations(
        body: Sequence[ast.stmt], loop_names: Set[str]
    ) -> Optional[str]:
        """Name of outer state the loop body mutates order-sensitively."""
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.AugAssign)
                    and isinstance(sub.target, ast.Name)
                    and sub.target.id not in loop_names
                ):
                    return sub.target.id
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("append", "extend")
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id not in loop_names
                ):
                    return sub.func.value.id
        return None

    # ---- S005: mutable defaults ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        if node.name.startswith("_"):
            return  # private helpers are the caller's problem
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                self._flag(
                    "S005", default,
                    f"mutable default argument in public {node.name}() — "
                    "one instance is shared across every call; default "
                    "to None",
                )


def _apply_pragmas(
    findings: List[Finding], pragmas: List[_Pragma], subject: str
) -> List[Finding]:
    out: List[Finding] = []
    for f in findings:
        suppressed = None
        for p in pragmas:
            if (
                p.rule_id == f.rule_id
                and p.reason
                and f.location is not None
                and p.line in (f.location, f.location - 1)
            ):
                suppressed = p
                break
        if suppressed is not None:
            suppressed.used = True
            out.append(
                Finding(
                    f.rule_id,
                    f"suppressed ({suppressed.reason}): {f.message}",
                    subject=f.subject,
                    location=f.location,
                    severity=Severity.INFO,
                )
            )
        else:
            out.append(f)
    for p in pragmas:
        if not p.reason:
            out.append(
                Finding(
                    p.rule_id,
                    "suppression pragma without a reason is ignored — "
                    "state why the hazard is safe",
                    subject=subject,
                    location=p.line,
                    severity=Severity.WARNING,
                )
            )
        elif not p.used:
            out.append(
                Finding(
                    p.rule_id,
                    "unused suppression pragma — the hazard it excused is "
                    "gone; delete the pragma",
                    subject=subject,
                    location=p.line,
                    severity=Severity.WARNING,
                )
            )
    return out


def lint_source_text(text: str, subject: str = "<string>") -> List[Finding]:
    """S001–S006 over one module's source text."""
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [
            Finding(
                "S002",
                f"unparseable source ({exc.msg} at line {exc.lineno}) — "
                "the determinism lint cannot vouch for this file",
                subject=subject,
                location=exc.lineno,
                severity=Severity.ERROR,
            )
        ]
    visitor = _Visitor(subject)
    visitor.visit(tree)
    return _apply_pragmas(
        visitor.findings, _collect_pragmas(text), subject
    )


def lint_source_file(path: Path, root: Optional[Path] = None) -> List[Finding]:
    path = Path(path)
    subject = f"src:{path.relative_to(root)}" if root else f"src:{path.name}"
    return lint_source_text(path.read_text(), subject=subject)


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent  # src/repro


def check_source_tree(root: Optional[Path] = None) -> Report:
    """Sweep every module of the installed ``repro`` package.

    The deliberately-hazardous fixture package is excluded here and
    reconciled separately by :func:`check_source_fixtures`.
    """
    root = Path(root) if root is not None else _package_root()
    report = Report()
    report.add_family("S")
    for path in sorted(root.rglob("*.py")):
        if "fixtures_source" in path.parts:
            continue
        report.extend(lint_source_file(path, root=root.parent))
        report.checked += 1
    return report


def check_source_fixtures() -> Report:
    """Reconcile the hazardous fixtures against their manifest."""
    from . import fixtures_source

    report = Report()
    report.add_family("S")
    pkg_dir = Path(fixtures_source.__file__).resolve().parent
    for module_name in sorted(fixtures_source.EXPECTED):
        expected = fixtures_source.EXPECTED[module_name]
        path = pkg_dir / f"{module_name}.py"
        subject = f"fixture:{module_name}"
        findings = lint_source_text(path.read_text(), subject=subject)
        report.extend(
            reconcile_expected(
                findings, expected, subject, context="builtin broken fixture"
            )
        )
        report.checked += 1
    return report


def check_source(run_fixtures: bool = True) -> Report:
    """The ``repro lint --source`` sweep: tree + fixture reconciliation."""
    report = check_source_tree()
    if run_fixtures:
        report.merge(check_source_fixtures())
    return report
