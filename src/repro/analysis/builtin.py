"""Sweep every program/trace/format the repo constructs (``repro lint``).

``check_all_builtin_programs`` is the entry point behind
``repro lint --all-builtin`` and the CI gate: it rebuilds the shipped
SMBD decode programs over a spread of bitmaps, the pipeline schedules
over the full knob grid, and the three sparse containers over several
shapes/sparsities, then runs every static checker plus the
static-vs-simulated cross-checks (W008/W009).

The naive decoder (``build_naive_decode``) is deliberately *not* part of
the clean sweep: it is the paper's strawman and exists precisely to
violate W007; tests and docs/ANALYSIS.md use it as the canonical failing
example.
"""

from __future__ import annotations

import numpy as np

from ..core.tca_bme import encode
from ..formats.csr import CSRMatrix
from ..formats.tiled_csl import TiledCSLMatrix
from ..gpu.pipeline import PipelineConfig, simulate_pipeline
from ..gpu.smbd_program import build_two_phase_decode
from .findings import Report
from .format_lint import lint_format
from .pipeline_lint import lint_pipeline_trace
from .warp_lint import cross_check_with_simulator, lint_warp_program

__all__ = [
    "builtin_warp_programs",
    "builtin_pipeline_traces",
    "builtin_formats",
    "check_all_builtin_programs",
]

#: Bitmap spread: empty, full, checkerboards, and seeded random draws —
#: the patterns that exercise every decode path (no loads, all loads,
#: alternating predicates, irregular offsets).
_BITMAPS = (
    0,
    0xFFFFFFFFFFFFFFFF,
    0x5555555555555555,
    0xAAAAAAAAAAAAAAAA,
    0x8000000000000001,  # u64 top bit set — popcount edge case
)
_TILE_OFFSETS = (0, 8)


def builtin_warp_programs():
    """Yield ``(program, shared_memory)`` for every shipped decode."""
    rng = np.random.default_rng(0)
    bitmaps = list(_BITMAPS) + [int(b) for b in rng.integers(
        0, 2 ** 64, size=3, dtype=np.uint64
    )]
    for bitmap in bitmaps:
        for tile_offset in _TILE_OFFSETS:
            program = build_two_phase_decode(bitmap, tile_offset)
            # Enough bytes for tile_offset + popcount(bitmap) + 1 FP16
            # slots; the guard predicates keep live lanes inside it.
            shared = np.zeros(2 * (tile_offset + 65), dtype=np.uint8)
            yield program, shared


def builtin_pipeline_traces():
    """Yield the schedule of every pipeline-knob combination."""
    durations = (
        dict(t_load_w=2.0, t_load_x=1.0, t_decode=0.5, t_compute=1.5),
        dict(t_load_w=1.0, t_load_x=1.0, t_decode=0.0, t_compute=2.0),
    )
    for iterations in (4, 16):
        for double_buffering in (True, False):
            for separate_groups in (True, False):
                for d in durations:
                    yield simulate_pipeline(PipelineConfig(
                        iterations=iterations,
                        double_buffering=double_buffering,
                        separate_groups=separate_groups,
                        **d,
                    ))


def builtin_formats():
    """Yield encoded containers over shapes/sparsities the tests use."""
    rng = np.random.default_rng(7)
    for m, k, sparsity in ((64, 64, 0.4), (100, 72, 0.6), (128, 128, 0.8)):
        dense = rng.standard_normal((m, k)).astype(np.float16)
        dense[rng.random((m, k)) < sparsity] = 0
        yield encode(dense)
        yield TiledCSLMatrix.from_dense(dense)
        yield CSRMatrix.from_dense(dense)


def check_all_builtin_programs() -> Report:
    """Run every static checker over everything the repo constructs."""
    report = Report()
    report.add_family("W", "P", "F")
    for program, shared in builtin_warp_programs():
        report.extend(lint_warp_program(program, shared_size=int(shared.size)))
        report.extend(cross_check_with_simulator(program, shared))
        report.checked += 1
    for trace in builtin_pipeline_traces():
        report.extend(lint_pipeline_trace(trace))
        report.checked += 1
    for matrix in builtin_formats():
        report.extend(lint_format(matrix))
        report.checked += 1
    return report
