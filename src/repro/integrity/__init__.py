"""End-to-end integrity under silent data corruption.

GPUs flip bits.  At fleet scale, silently: no ECC trap, no error code —
a weight tile, a KV block, or an accumulator is simply wrong, and the
server streams confident tokens computed from garbage.  This package
makes the SpInfer stack *detect* that instead of serving it:

* :mod:`~repro.integrity.abft` — algorithm-based fault tolerance for
  the SpMM kernels: a checksum row sealed into TCA-BME / Tiled-CSL at
  encode time verifies every product in ``O((K+M)N)``; per-tile CRC
  digests catch corrupted weights before a FLOP is spent on them.
* :mod:`~repro.integrity.policy` — what to verify and what it costs;
  ``None`` (no policy) is bit-identical to the pre-integrity runtime.
* :mod:`~repro.integrity.harness` — the detection-rate/goodput
  experiment over the builtin SDC fault plans, byte-stable JSON.

The C-family lint rules (:mod:`repro.analysis.integrity_lint`) audit
policies and run outcomes: tags nobody verifies, corruption detected
but served anyway, quarantine that can never trigger, verification
modelled as free, and trace/counter conservation.
"""

from .abft import (
    IntegrityError,
    output_colsum_gap,
    verification_cost_frac,
    verification_flops,
    verify_output,
    weight_checksum,
)
from .harness import (
    SDC_DISAGG_PLANS,
    SDC_ROUTER_PLANS,
    IntegrityConfig,
    integrity_report,
    integrity_report_json,
    run_integrity,
)
from .policy import (
    BROKEN_INTEGRITY_POLICIES,
    INTEGRITY_POLICIES,
    IntegrityPolicy,
    get_integrity_policy,
)

__all__ = [
    "IntegrityError",
    "weight_checksum",
    "output_colsum_gap",
    "verify_output",
    "verification_flops",
    "verification_cost_frac",
    "IntegrityPolicy",
    "INTEGRITY_POLICIES",
    "BROKEN_INTEGRITY_POLICIES",
    "get_integrity_policy",
    "IntegrityConfig",
    "SDC_ROUTER_PLANS",
    "SDC_DISAGG_PLANS",
    "run_integrity",
    "integrity_report",
    "integrity_report_json",
]
