"""The integrity experiment: detection rate vs goodput under SDC.

Runs the SAME silent-data-corruption fault plans, workload, and seeds
under three arms —

``verify-off``
    No integrity policy at all (the control arm).  Corruptions land
    silently; the ground-truth ``corrupted_completed`` counter shows
    how many poisoned requests a real server would have served.
``verify-on``
    The ``verify`` policy: ABFT kernel checks, weight digests, and KV
    content tags every iteration and on every migration receive.
``quarantine``
    ``verify`` plus replica quarantine after 3 detections: the router
    stops trusting hardware that keeps corrupting.

— and reports detection rate, false negatives (corrupted requests that
completed anyway), goodput, and the modelled verification overhead per
arm.  Everything is deterministic: ``integrity_report_json`` is
byte-identical across runs, which is what the CI replay gate diffs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..llm.chaos import ChaosConfig, run_chaos
from ..runtime import RuntimeStats
from .policy import INTEGRITY_POLICIES, IntegrityPolicy

__all__ = [
    "SDC_ROUTER_PLANS",
    "SDC_DISAGG_PLANS",
    "IntegrityConfig",
    "run_integrity",
    "integrity_report",
    "integrity_report_json",
]

#: The silent-corruption builtin plans, by target runtime.
SDC_ROUTER_PLANS: Tuple[str, ...] = ("sdc-replica", "weight-flip")
SDC_DISAGG_PLANS: Tuple[str, ...] = ("kv-poison",)

#: Arm name -> integrity policy (None = the control arm).
_ARMS: Tuple[Tuple[str, Optional[str]], ...] = (
    ("verify-off", None),
    ("verify-on", "verify"),
    ("quarantine", "quarantine"),
)


@dataclass(frozen=True)
class IntegrityConfig:
    """One integrity experiment: workload + fleet + SDC plan set."""

    model: str = "opt-13b"
    framework: str = "spinfer"
    gpu: str = "RTX4090"
    replicas: int = 2
    num_requests: int = 24
    arrival_rate: float = 4.0
    prompt_len: int = 64
    output_len: int = 96
    seed: int = 3
    #: Recovery policy shared by every arm — quarantine reuses its
    #: reroute machinery, so the arms differ ONLY in integrity.
    recovery: str = "reroute"
    plans: Tuple[str, ...] = SDC_ROUTER_PLANS + SDC_DISAGG_PLANS

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("need at least one replica")
        if not self.plans:
            raise ValueError("need at least one fault plan")
        known = set(SDC_ROUTER_PLANS) | set(SDC_DISAGG_PLANS)
        unknown = [p for p in self.plans if p not in known]
        if unknown:
            raise ValueError(
                f"not SDC plans: {unknown}; available: {sorted(known)}"
            )

    def quick(self) -> "IntegrityConfig":
        """A smaller copy for smoke tests and the CI gate."""
        return replace(self, num_requests=12, output_len=64)

    def chaos_config(self, plan: str) -> ChaosConfig:
        return ChaosConfig(
            model=self.model,
            framework=self.framework,
            gpu=self.gpu,
            replicas=self.replicas,
            num_requests=self.num_requests,
            arrival_rate=self.arrival_rate,
            prompt_len=self.prompt_len,
            output_len=self.output_len,
            seed=self.seed,
            plan=plan,
        )


def run_integrity(
    cfg: IntegrityConfig,
) -> Dict[str, Dict[str, RuntimeStats]]:
    """Every arm x every plan, identical workload and seeds.

    Returns ``{arm: {plan: stats}}``.
    """
    results: Dict[str, Dict[str, RuntimeStats]] = {}
    for arm, policy_name in _ARMS:
        policy: Optional[IntegrityPolicy] = (
            INTEGRITY_POLICIES[policy_name] if policy_name else None
        )
        results[arm] = {
            plan: run_chaos(
                cfg.chaos_config(plan), cfg.recovery, integrity=policy
            )
            for plan in cfg.plans
        }
    return results


def _trace_digest(stats: RuntimeStats) -> str:
    log = repr(stats.trace.event_log()).encode()
    return hashlib.sha256(log).hexdigest()


def _plan_metrics(stats: RuntimeStats) -> Dict:
    injected = stats.sdc_injected
    detected = stats.sdc_detected
    return {
        "sdc_injected": injected,
        "sdc_detected": detected,
        "detection_rate": round(detected / injected, 6) if injected else 1.0,
        "corrupted_completed": stats.corrupted_completed,
        "quarantines": stats.quarantines,
        "completed": len(stats.completed),
        "failed": len(stats.failed),
        "retries": stats.retries,
        "verification_s": round(stats.verification_s, 9),
        "goodput_tokens_per_s": round(stats.goodput_tokens_per_s, 6),
        "makespan_s": round(stats.makespan_s, 9),
        "trace_sha256": _trace_digest(stats),
    }


def _arm_summary(by_plan: Dict[str, Dict]) -> Dict:
    plans = [by_plan[name] for name in sorted(by_plan)]
    injected = sum(m["sdc_injected"] for m in plans)
    detected = sum(m["sdc_detected"] for m in plans)
    return {
        "sdc_injected": injected,
        "sdc_detected": detected,
        "detection_rate": round(detected / injected, 6) if injected else 1.0,
        "false_negatives": sum(m["corrupted_completed"] for m in plans),
        "quarantines": sum(m["quarantines"] for m in plans),
        "verification_s": round(
            sum(m["verification_s"] for m in plans), 9
        ),
        "goodput_tokens_per_s": round(
            sum(m["goodput_tokens_per_s"] for m in plans), 6
        ),
    }


def integrity_report(cfg: IntegrityConfig) -> Dict:
    """Deterministic JSON-ready report (``repro integrity --json``)."""
    results = run_integrity(cfg)
    arms = {}
    for arm in sorted(results):
        by_plan = {
            plan: _plan_metrics(stats)
            for plan, stats in sorted(results[arm].items())
        }
        arms[arm] = {"plans": by_plan, "summary": _arm_summary(by_plan)}
    off = arms["verify-off"]["summary"]
    on = arms["verify-on"]["summary"]
    overhead = 0.0
    if off["goodput_tokens_per_s"] > 0:
        overhead = 1.0 - on["goodput_tokens_per_s"] / off["goodput_tokens_per_s"]
    return {
        "schema": "repro-integrity/v1",
        "scenario": {
            "model": cfg.model,
            "framework": cfg.framework,
            "gpu": cfg.gpu,
            "replicas": cfg.replicas,
            "num_requests": cfg.num_requests,
            "arrival_rate": cfg.arrival_rate,
            "prompt_len": cfg.prompt_len,
            "output_len": cfg.output_len,
            "seed": cfg.seed,
            "recovery": cfg.recovery,
            "plans": list(cfg.plans),
        },
        "arms": arms,
        "headline": {
            "detection_rate_verify_on": on["detection_rate"],
            "false_negatives_verify_on": on["false_negatives"],
            "served_corrupted_verify_off": off["false_negatives"],
            "goodput_cost_frac": round(overhead, 6),
        },
    }


def integrity_report_json(cfg: IntegrityConfig) -> str:
    """Byte-stable serialisation: sorted keys, no whitespace drift."""
    return json.dumps(integrity_report(cfg), indent=2, sort_keys=True)
