"""Algorithm-based fault tolerance (ABFT) for the SpMM kernels.

Huang & Abraham's classic construction: augment ``W`` (``M x K``) with
the column-checksum row ``c = e^T W`` at encode time.  For any input
``X`` (``K x N``), a correct product ``Y = W X`` satisfies::

    Y.sum(axis=0) == c @ X        (up to floating-point rounding)

so one extra vector-matrix product (``2KN`` flops) plus one column
reduction of the output (``MN`` flops) checks all ``2MKN`` flops of the
SpMM — the verification is ``O((K + M) N)`` against ``O(MKN)`` work,
which is why ABFT costs single-digit percent at LLM shapes.

The checksum row is attached by ``TCABMEMatrix.seal()`` /
``TiledCSLMatrix.seal()`` alongside per-tile content digests; this
module owns the check itself and its cost model.  Everything here is
pure numpy with no repo imports, so the kernels can depend on it
without import cycles.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "IntegrityError",
    "weight_checksum",
    "output_colsum_gap",
    "verify_output",
    "verification_flops",
    "verification_cost_frac",
]


class IntegrityError(RuntimeError):
    """A checksum, digest, or content tag failed verification.

    Raised *instead of returning corrupted data* — the whole point of
    the integrity layer is that this error fires before a wrong result
    crosses an API boundary.
    """


def weight_checksum(w_dense: np.ndarray) -> np.ndarray:
    """The ABFT column-checksum row ``e^T W`` (float64, length K)."""
    w = np.asarray(w_dense)
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {w.shape}")
    return w.astype(np.float64).sum(axis=0)


def output_colsum_gap(
    y: np.ndarray, x: np.ndarray, checksum_row: np.ndarray
) -> float:
    """Max absolute deviation between ``Y``'s column sums and ``c @ X``.

    ``X`` is quantised through FP16 first, exactly as the functional
    kernels quantise their activation operand, so a clean product's gap
    is pure accumulation-order rounding.
    """
    xq = np.asarray(x, dtype=np.float16).astype(np.float64)
    expected = np.asarray(checksum_row, dtype=np.float64) @ xq
    colsum = np.asarray(y, dtype=np.float64).sum(axis=0)
    return float(np.max(np.abs(colsum - expected))) if expected.size else 0.0


def verify_output(
    y: np.ndarray,
    x: np.ndarray,
    checksum_row: np.ndarray,
    *,
    rtol: float = 1e-6,
    atol: float = 1e-7,
    where: str = "spmm",
) -> float:
    """Run the ABFT column-sum check; returns the observed gap.

    Raises :class:`IntegrityError` when the gap exceeds
    ``atol + rtol * scale``, where ``scale`` is the absolute magnitude
    flowing into each column sum (``|c| @ |X|``) — the quantity FP32
    accumulation noise actually scales with.  Measured clean gaps sit
    near ``1e-8 * scale`` while a single mantissa-MSB bit flip in a
    stored FP16 weight lands near ``1e-4 * scale``, so ``rtol=1e-6``
    splits them with two orders of magnitude on either side.
    """
    xq = np.asarray(x, dtype=np.float16).astype(np.float64)
    c = np.asarray(checksum_row, dtype=np.float64)
    expected = c @ xq
    colsum = np.asarray(y, dtype=np.float64).sum(axis=0)
    if expected.size == 0:
        return 0.0
    gap = float(np.max(np.abs(colsum - expected)))
    scale = float(max(np.max(np.abs(c) @ np.abs(xq)), 1.0))
    if gap > atol + rtol * scale:
        raise IntegrityError(
            f"ABFT checksum mismatch in {where}: output column sums "
            f"deviate from e^T*W @ X by {gap:.6g} "
            f"(tolerance {atol + rtol * scale:.6g}) — "
            "the product was computed from corrupted data"
        )
    return gap


def verification_flops(m: int, k: int, n: int) -> int:
    """Flops the ABFT check itself spends: ``2KN`` for ``c @ X`` plus
    ``MN`` for the output column reduction."""
    return 2 * k * n + m * n


def verification_cost_frac(m: int, k: int, n: int) -> float:
    """Verification flops as a fraction of the ``2MKN`` SpMM flops.

    The modelled runtime overhead of verify mode; at LLM decode shapes
    (``M, K`` in the thousands) this is well under 1 %.
    """
    dense = 2 * m * k * n
    return verification_flops(m, k, n) / dense if dense else 0.0
