"""Integrity policies: what gets checksummed, verified, and quarantined.

A policy is the single switchboard the runtime consults (duck-typed —
the runtime never imports this package): which verification passes run
each decode iteration, what they cost, and whether repeated detections
quarantine a replica.  ``None`` — no policy at all — is the hard OFF
switch: the runtime is bit-identical to one built before the integrity
layer existed, which is what the bench's control arm and the CI
baseline gate pin down.

The broken policies are lint fixtures: each misconfigures the layer in
a way one C-rule catches, and ``check_builtin_integrity_artifacts``
reconciles the expected findings exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "IntegrityPolicy",
    "INTEGRITY_POLICIES",
    "BROKEN_INTEGRITY_POLICIES",
    "get_integrity_policy",
]


@dataclass(frozen=True)
class IntegrityPolicy:
    """One integrity configuration.

    Verification is modelled, not free: each enabled pass adds its cost
    fraction to every decode iteration (ABFT is ``O((K+M)N)`` against
    the SpMM's ``O(MKN)``, KV tag checks are a hash over resident
    sequences), and a detected weight corruption pays a reload.
    """

    name: str
    #: KV blocks carry content tags (cheap to write; pointless unless
    #: somebody verifies them — rule C001).
    tag_kv: bool = False
    #: Check resident/migrated KV content tags every decode iteration
    #: and on every migration receive.
    verify_kv: bool = False
    #: Run the ABFT column-sum check on every decode iteration's SpMM.
    verify_kernels: bool = False
    #: Check weight tile digests (catches persistent bit flips).
    verify_weights: bool = False
    #: Per-iteration cost of the kernel ABFT pass, as a fraction of the
    #: iteration's decode time.
    kernel_check_cost_frac: float = 0.02
    #: Per-iteration cost of KV tag verification, same units.
    kv_check_cost_frac: float = 0.005
    #: Seconds to reload a weight shard after a digest mismatch.
    weight_reload_s: float = 0.05
    #: Quarantine a replica after this many detected corruptions
    #: (None = never).  1 is a hair trigger — a single transient flip
    #: permanently removes capacity (rule C003).
    quarantine_after: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("policy needs a name")
        for attr in ("kernel_check_cost_frac", "kv_check_cost_frac"):
            frac = getattr(self, attr)
            if not 0.0 <= frac < 1.0:
                raise ValueError(f"{attr} must be in [0, 1), got {frac}")
        if self.weight_reload_s < 0:
            raise ValueError("weight_reload_s cannot be negative")
        if self.quarantine_after is not None and self.quarantine_after <= 0:
            raise ValueError(
                "quarantine_after must be positive (or None to disable)"
            )

    @property
    def verifies_anything(self) -> bool:
        return self.verify_kv or self.verify_kernels or self.verify_weights


#: The shipped policies.  "off" exists so sweeps can name the control
#: arm; passing ``integrity=None`` is equivalent and is what OFF means
#: for the bit-identity gate.
INTEGRITY_POLICIES: Dict[str, IntegrityPolicy] = {
    "off": IntegrityPolicy(name="off"),
    "verify": IntegrityPolicy(
        name="verify",
        tag_kv=True,
        verify_kv=True,
        verify_kernels=True,
        verify_weights=True,
    ),
    "quarantine": IntegrityPolicy(
        name="quarantine",
        tag_kv=True,
        verify_kv=True,
        verify_kernels=True,
        verify_weights=True,
        quarantine_after=3,
    ),
}

#: Deliberately broken policies -> the C-rule ids each must trip.
BROKEN_INTEGRITY_POLICIES: Dict[str, Tuple[IntegrityPolicy, Tuple[str, ...]]] = {
    # Writes tags on every KV block, never checks one: pure overhead,
    # zero protection on the migration path.
    "tag-and-pray": (
        IntegrityPolicy(name="tag-and-pray", tag_kv=True),
        ("C001",),
    ),
    # Kernel ABFT on, but migrated KV ships tagged and unchecked — the
    # disagg/session-ship path serves whatever arrives.
    "blind-check": (
        IntegrityPolicy(
            name="blind-check", tag_kv=True, verify_kernels=True
        ),
        ("C001",),
    ),
    # One detection permanently removes a replica: a single transient
    # flip halves the fleet.
    "hair-trigger-quarantine": (
        IntegrityPolicy(
            name="hair-trigger-quarantine",
            tag_kv=True,
            verify_kv=True,
            verify_kernels=True,
            verify_weights=True,
            quarantine_after=1,
        ),
        ("C003",),
    ),
    # Quarantine threshold configured, but no verification pass can
    # ever produce a detection — the trigger is unreachable.
    "quarantine-without-eyes": (
        IntegrityPolicy(name="quarantine-without-eyes", quarantine_after=3),
        ("C003",),
    ),
    # Verification enabled and modelled as free: every goodput number
    # downstream silently overstates the protected configuration.
    "free-verification": (
        IntegrityPolicy(
            name="free-verification",
            tag_kv=True,
            verify_kv=True,
            verify_kernels=True,
            kernel_check_cost_frac=0.0,
            kv_check_cost_frac=0.0,
        ),
        ("C004",),
    ),
}


def get_integrity_policy(name: str) -> IntegrityPolicy:
    try:
        return INTEGRITY_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown integrity policy {name!r}; "
            f"available: {sorted(INTEGRITY_POLICIES)}"
        ) from None
