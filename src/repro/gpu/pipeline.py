"""Event-driven model of the SpInfer asynchronous pipeline (Algorithm 1).

The scalar cost model in :mod:`repro.gpu.simulator` summarises pipeline
overlap with one calibrated number.  This module *derives* that overlap
instead: it executes the per-iteration task graph of the SpInfer-SpMM
main loop — GTile load, XTile load, SMBD decode, Tensor-Core compute —
on three contended resources (memory pipe, CUDA cores, Tensor Cores)
under the paper's depth-2 double-buffering and two-``cp.async``-group
discipline, and reports the schedule.

Task graph per iteration ``k`` (paper Fig. 9 / Algorithm 1):

* ``load_w(k)``  (mem)  — LDGSTS of the bitmap + value GTile.
* ``load_x(k)``  (mem)  — LDGSTS of the XTile.
* ``decode(k)``  (cuda) — SMBD; needs ``load_w(k)``.  With *separate*
  cp.async groups it can start the moment the W group lands; with a
  single fused group it must also wait for ``load_x(k)``.
* ``compute(k)`` (tc)   — ldmatrix + mma; needs ``decode(k)`` and
  ``load_x(k)``.

Buffering: with double buffering (depth 2), ``load_w(k)`` may only start
once ``decode(k-2)`` has released its buffer slot, and ``load_x(k)``
once ``compute(k-2)`` has; without it, the producer waits for the
consumer of the *previous* iteration.  Ablating either knob reproduces
the qualitative Table 1 behaviour from structure alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["PipelineConfig", "TaskEvent", "PipelineTrace", "simulate_pipeline"]

_RESOURCES = ("mem", "cuda", "tc")


@dataclass(frozen=True)
class PipelineConfig:
    """Per-iteration stage durations (seconds) and pipeline knobs."""

    iterations: int
    t_load_w: float
    t_load_x: float
    t_decode: float
    t_compute: float
    double_buffering: bool = True
    separate_groups: bool = True

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("pipeline needs at least one iteration")
        for name in ("t_load_w", "t_load_x", "t_decode", "t_compute"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass(frozen=True)
class TaskEvent:
    """One scheduled stage instance."""

    name: str  # "load_w" | "load_x" | "decode" | "compute"
    iteration: int
    resource: str  # "mem" | "cuda" | "tc"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PipelineTrace:
    """The complete schedule of one thread block's main loop."""

    config: PipelineConfig
    events: List[TaskEvent]
    total_time: float
    busy: Dict[str, float] = field(default_factory=dict)

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the whole schedule."""
        if resource not in _RESOURCES:
            raise KeyError(f"unknown resource {resource!r}; options: {_RESOURCES}")
        if not self.total_time:
            return 0.0
        return self.busy.get(resource, 0.0) / self.total_time

    def events_for(self, name: str) -> List[TaskEvent]:
        return [e for e in self.events if e.name == name]

    def render_gantt(self, width: int = 72, max_iterations: int = 8) -> str:
        """ASCII Gantt chart of the schedule (one row per resource).

        Each character cell covers ``total_time / width`` seconds; a cell
        shows the iteration digit (mod 10) of the task occupying it, or
        '.' when the resource idles — making the overlap (or its absence,
        for the ablations) directly visible in the results files.
        """
        if width <= 0:
            raise ValueError("width must be positive")
        horizon = max(
            (e.end for e in self.events if e.iteration < max_iterations),
            default=self.total_time,
        )
        step = horizon / width if horizon else 1.0
        lines = []
        for resource in _RESOURCES:
            row = ["."] * width
            for e in self.events:
                if e.resource != resource or e.iteration >= max_iterations:
                    continue
                lo = int(e.start / step)
                hi = max(lo + 1, int(e.end / step))
                for c in range(lo, min(hi, width)):
                    row[c] = str(e.iteration % 10)
            lines.append(f"{resource:>5s} |{''.join(row)}|")
        return "\n".join(lines)

    def stalls(self, resource: str) -> float:
        """Idle time of a resource between its first and last task."""
        evs = sorted(
            (e for e in self.events if e.resource == resource),
            key=lambda e: e.start,
        )
        if not evs:
            return 0.0
        span = evs[-1].end - evs[0].start
        return span - sum(e.duration for e in evs)


def simulate_pipeline(config: PipelineConfig) -> PipelineTrace:
    """Schedule the main loop and return the trace.

    Deterministic list scheduling: tasks issue in program order per
    resource; a task starts at ``max(resource free, dependencies done,
    buffer slot free)``.
    """
    n = config.iterations
    free = {r: 0.0 for r in _RESOURCES}  # next time each resource is idle
    end: Dict[str, List[float]] = {
        name: [0.0] * n for name in ("load_w", "load_x", "decode", "compute")
    }
    events: List[TaskEvent] = []
    depth = 2 if config.double_buffering else 1

    def schedule(
        name: str, k: int, resource: str, duration: float, deps: List[float]
    ) -> None:
        start = max([free[resource]] + deps)
        finish = start + duration
        free[resource] = finish
        end[name][k] = finish
        events.append(
            TaskEvent(
                name=name, iteration=k, resource=resource, start=start, end=finish
            )
        )

    for k in range(n):
        # Buffer-slot release: the consumer of the iteration `depth` back.
        w_slot_free = end["decode"][k - depth] if k >= depth else 0.0
        x_slot_free = end["compute"][k - depth] if k >= depth else 0.0

        schedule("load_w", k, "mem", config.t_load_w, [w_slot_free])
        schedule("load_x", k, "mem", config.t_load_x, [x_slot_free])

        decode_deps = [end["load_w"][k]]
        if not config.separate_groups:
            # One fused cp.async group: waiting on it waits on both loads.
            decode_deps.append(end["load_x"][k])
        schedule("decode", k, "cuda", config.t_decode, decode_deps)

        schedule(
            "compute", k, "tc", config.t_compute,
            [end["decode"][k], end["load_x"][k]],
        )

    total = max(e.end for e in events)
    busy = {r: sum(e.duration for e in events if e.resource == r) for r in _RESOURCES}
    return PipelineTrace(config=config, events=events, total_time=total, busy=busy)
