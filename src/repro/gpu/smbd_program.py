"""SMBD as an executable instruction program (paper Algorithm 2, Fig. 8).

Expresses the two-phase Shared-Memory Bitmap Decoding of one BitmapTile
as a :class:`~repro.gpu.warp_sim.WarpProgram` and runs it on the SIMT
interpreter, validating the paper's instruction-level claims:

* each lane spends exactly **one** MaskedPopCount (``POPC`` after the
  preceding-bits mask) per 32-bit register — phase II reuses phase I's
  count, incremented by the phase-I hit bit;
* a naive decoder that recomputes the masked popcount for the odd bit
  needs a second ``POPC`` plus mask arithmetic and measurably more
  cycles.

The decoded 16-bit values are compared bit-for-bit against the
lane-faithful reference decoder in tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .warp_sim import WarpProgram, WarpResult, WarpSimulator

__all__ = [
    "build_two_phase_decode",
    "build_naive_decode",
    "run_bitmaptile_decode",
    "run_tctile_decode",
]


def _common_prologue(program: WarpProgram, bitmap: int) -> None:
    """Lane setup shared by both decoders."""
    program.emit("S_REG", "lane")
    program.emit("MOV", "bmp", bitmap)
    program.emit("SHL", "off", "lane", 1)  # first bit index = 2 * lane
    program.emit("MOV", "one", 1)


def _emit_masked_popcount(
    program: WarpProgram, dest: str, bit_index_reg: str
) -> None:
    """Algorithm 2: count ones strictly below ``bit_index_reg``."""
    program.emit("SHL", "_m", "one", bit_index_reg)
    program.emit("ADD", "_mask", "_m", -1)
    program.emit("AND", "_pre", "bmp", "_mask")
    program.emit("POPC", dest, "_pre")


def _emit_load_or_zero(
    program: WarpProgram,
    dest: str,
    index_reg: str,
    bit_reg: str,
    pred: str,
    values_base: int,
) -> None:
    """Predicated 2-byte load of Values[tile_offset + index]."""
    program.emit("SETP", pred, bit_reg)
    program.emit("SHL", f"{dest}_addr", index_reg, 1)  # FP16: 2 B/value
    program.emit("ADD", f"{dest}_addr", f"{dest}_addr", values_base)
    program.emit("LDS", f"{dest}_raw", f"{dest}_addr", pred=pred)
    program.emit("SEL", dest, pred, f"{dest}_raw", 0)


def build_two_phase_decode(
    bitmap: int, tile_offset: int, values_base: int = 0
) -> WarpProgram:
    """The paper's decoder: phase II reuses phase I's MaskedPopCount."""
    p = WarpProgram(name="smbd-two-phase")
    _common_prologue(p, bitmap)

    # Phase I: even bit (a0).
    _emit_masked_popcount(p, "cnt", "off")
    p.emit("SHR", "_s0", "bmp", "off")
    p.emit("AND", "bit0", "_s0", 1)
    p.emit("ADD", "idx0", "cnt", tile_offset)
    _emit_load_or_zero(p, "a0", "idx0", "bit0", "p0", values_base)

    # Phase II: odd bit (a1) — NO new POPC, just += bit0.
    p.emit("ADD", "off1", "off", 1)
    p.emit("SHR", "_s1", "bmp", "off1")
    p.emit("AND", "bit1", "_s1", 1)
    p.emit("ADD", "idx1", "idx0", "bit0")
    _emit_load_or_zero(p, "a1", "idx1", "bit1", "p1", values_base)
    return p


def build_naive_decode(
    bitmap: int, tile_offset: int, values_base: int = 0
) -> WarpProgram:
    """Strawman decoder: recomputes the masked popcount for phase II."""
    p = WarpProgram(name="smbd-naive")
    _common_prologue(p, bitmap)

    _emit_masked_popcount(p, "cnt0", "off")
    p.emit("SHR", "_s0", "bmp", "off")
    p.emit("AND", "bit0", "_s0", 1)
    p.emit("ADD", "idx0", "cnt0", tile_offset)
    _emit_load_or_zero(p, "a0", "idx0", "bit0", "p0", values_base)

    p.emit("ADD", "off1", "off", 1)
    _emit_masked_popcount(p, "cnt1", "off1")  # the redundant PopCount
    p.emit("SHR", "_s1", "bmp", "off1")
    p.emit("AND", "bit1", "_s1", 1)
    p.emit("ADD", "idx1", "cnt1", tile_offset)
    _emit_load_or_zero(p, "a1", "idx1", "bit1", "p1", values_base)
    return p


def run_bitmaptile_decode(
    bitmap: int,
    values: np.ndarray,
    tile_offset: int = 0,
    naive: bool = False,
) -> Tuple[np.ndarray, np.ndarray, WarpResult]:
    """Execute a decode program against a real value stream.

    ``values`` is the enclosing GroupTile's FP16 value slice (the shared
    ValueBuffer of Algorithm 1); ``tile_offset`` this BitmapTile's start
    within it.  Returns ``(a0, a1, result)`` where a0/a1 are per-lane
    FP16 values.
    """
    values = np.asarray(values, dtype=np.float16)
    builder = build_naive_decode if naive else build_two_phase_decode
    program = builder(bitmap, tile_offset)
    sim = WarpSimulator(
        shared_memory=np.frombuffer(values.tobytes(), dtype=np.uint8)
    )
    result = sim.run(program)
    a0 = result.lane_values("a0").astype(np.uint16).view(np.float16)
    a1 = result.lane_values("a1").astype(np.uint16).view(np.float16)
    return a0, a1, result


def run_tctile_decode(
    bitmaps, values, naive: bool = False
) -> Tuple[np.ndarray, int]:
    """Decode a whole TCTile (4 registers) with PopCount offset chaining.

    Between registers the kernel advances the value offset with one
    whole-bitmap ``PopCount`` (no stored offsets — paper Section 4.3.3's
    "online offset calculation").  Returns the fragments ``(32, 4, 2)``
    as float16 plus the total cycles across the four register decodes.
    """
    bitmaps = np.asarray(bitmaps, dtype=np.uint64)
    if bitmaps.shape != (4,):
        raise ValueError(f"a TCTile has 4 bitmaps, got shape {bitmaps.shape}")
    values = np.asarray(values, dtype=np.float16)

    frags = np.zeros((32, 4, 2), dtype=np.float16)
    offset = 0
    total_cycles = 0
    for reg in range(4):
        bitmap = int(bitmaps[reg])
        a0, a1, result = run_bitmaptile_decode(
            bitmap, values, tile_offset=offset, naive=naive
        )
        frags[:, reg, 0] = a0
        frags[:, reg, 1] = a1
        total_cycles += result.cycles
        # The running offset advances by PopCount(bitmap) — the online
        # calculation replacing stored per-tile offsets.
        offset += bitmap.bit_count()
    return frags, total_cycles
