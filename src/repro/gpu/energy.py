"""Energy model for the SpMM kernels (extension; no paper counterpart).

Data movement dominates GPU energy: a DRAM access costs orders of
magnitude more per byte than an on-chip FLOP.  Since TCA-BME's entire
mechanism is moving fewer DRAM bytes, it saves energy even where the
kernel is not time-bound by bandwidth.  The model prices a kernel launch
with standard per-operation energies (7 nm-class figures from the
accelerator-architecture literature) applied to the cost model's byte
and FLOP counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.base import SpMMKernel, SpMMProblem
from .simulator import KernelProfile
from .specs import GPUSpec, RTX4090

__all__ = ["EnergyModel", "EnergyEstimate", "kernel_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energies, picojoules."""

    dram_pj_per_byte: float = 80.0
    l2_pj_per_byte: float = 8.0
    tc_pj_per_flop: float = 0.4
    cuda_pj_per_flop: float = 1.0
    int_pj_per_op: float = 0.8
    #: Static (leakage + clocking) power while the kernel runs, watts.
    static_watts: float = 80.0

    def __post_init__(self) -> None:
        for name in ("dram_pj_per_byte", "l2_pj_per_byte", "tc_pj_per_flop",
                     "cuda_pj_per_flop", "int_pj_per_op", "static_watts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass
class EnergyEstimate:
    """Energy breakdown of one launch, joules."""

    kernel: str
    dram_j: float
    compute_j: float
    decode_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.dram_j + self.compute_j + self.decode_j + self.static_j

    @property
    def dram_share(self) -> float:
        return self.dram_j / self.total_j if self.total_j else 0.0


def kernel_energy(
    kernel: SpMMKernel,
    problem: SpMMProblem,
    gpu: GPUSpec = RTX4090,
    model: EnergyModel = EnergyModel(),
) -> EnergyEstimate:
    """Price one kernel launch's energy from its cost-model profile."""
    profile: KernelProfile = kernel.profile(problem, gpu)
    work = kernel._work(problem)

    dram_j = profile.dram_bytes * model.dram_pj_per_byte * 1e-12
    compute_j = (
        work.tc_flops * model.tc_pj_per_flop
        + work.cuda_flops * model.cuda_pj_per_flop
    ) * 1e-12
    decode_j = (
        work.decode_values
        * kernel.calibration.decode_ops_per_value
        * model.int_pj_per_op
        * 1e-12
    )
    static_j = model.static_watts * profile.time_s
    return EnergyEstimate(
        kernel=kernel.name,
        dram_j=dram_j,
        compute_j=compute_j,
        decode_j=decode_j,
        static_j=static_j,
    )
