"""Warp-level instruction simulator.

SpInfer's decoder is written at the PTX level (paper Listing 1 and
Algorithm 2); the claims about SMBD — one ``MaskedPopCount`` per lane
per register, phase II reusing phase I's count — are claims about an
*instruction sequence*.  This module provides a small SIMT interpreter
(32 lanes in lockstep, per-lane registers, shared memory with the
32-bank conflict model, predicated execution) so those sequences can be
written down as programs, executed, and cycle-counted.

The ISA is a minimal SASS-like subset sufficient for SMBD:

===========  =====================================================
``MOV``      ``rd = imm`` or ``rd = rs``
``S_REG``    ``rd = special`` (``laneid``)
``ADD/SUB``  integer arithmetic (operands: registers or immediates)
``SHL/SHR``  logical shifts
``AND/OR``   bitwise ops
``POPC``     population count (the ``__popcll`` intrinsic)
``SETP``     predicate ``pd = (rs != 0)``
``SEL``      ``rd = pd ? ra : rb``
``LDS``      shared-memory load (2 bytes), predicated, bank-modelled
``NOP``      scheduling filler
===========  =====================================================

Timing: in-order issue, one instruction per cycle per warp, plus a
register scoreboard — an instruction stalls until its sources' results
are ready (ALU latency 4, POPC 8, LDS 22 + bank replays).  This is the
standard simplified Ampere timing model used in microbenchmark papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.bitmap import popcount64

__all__ = [
    "Instr",
    "WarpProgram",
    "WarpResult",
    "WarpSimulator",
    "WARP_SIZE",
    "bank_conflict_replays",
]

WARP_SIZE = 32

Operand = Union[int, str]  # register name or immediate

#: Result latency (cycles) per opcode class.
_LATENCY = {
    "MOV": 4,
    "S_REG": 4,
    "ADD": 4,
    "SUB": 4,
    "SHL": 4,
    "SHR": 4,
    "AND": 4,
    "OR": 4,
    "SEL": 4,
    "SETP": 4,
    "POPC": 8,
    "LDS": 22,
    "NOP": 1,
}

_ALU_OPS = {"MOV", "ADD", "SUB", "SHL", "SHR", "AND", "OR", "POPC"}


def bank_conflict_replays(addrs: np.ndarray, active: np.ndarray) -> int:
    """Replay cycles of one LDS under the 32-bank, 4-byte-word model.

    Lanes hitting the same bank but *different* 4-byte words serialise;
    the replay count is the worst per-bank fan-out minus one (broadcasts
    of the same word are free).  Shared between the simulator and the
    static analyzer (:mod:`repro.analysis`) so both predict identically.
    """
    live = np.asarray(addrs)[np.asarray(active, dtype=bool)]
    if live.size == 0:
        return 0
    words = live // 4
    banks = words % 32
    worst = 1
    for b in np.unique(banks):
        worst = max(worst, len(np.unique(words[banks == b])))
    return worst - 1


@dataclass(frozen=True)
class Instr:
    """One warp instruction."""

    opcode: str
    dest: Optional[str] = None
    srcs: Sequence[Operand] = ()
    #: Predicate register guarding execution (``None`` = always).
    pred: Optional[str] = None

    def __post_init__(self) -> None:
        if self.opcode not in _LATENCY:
            raise ValueError(
                f"unknown opcode {self.opcode!r}; supported: {sorted(_LATENCY)}"
            )


@dataclass
class WarpProgram:
    """An instruction sequence plus metadata."""

    name: str
    instructions: List[Instr] = field(default_factory=list)

    def emit(self, opcode: str, dest: Optional[str] = None,
             *srcs: Operand, pred: Optional[str] = None) -> "WarpProgram":
        self.instructions.append(Instr(opcode, dest, srcs, pred))
        return self

    def count(self, opcode: str) -> int:
        return sum(1 for i in self.instructions if i.opcode == opcode)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class WarpResult:
    """Execution outcome."""

    registers: Dict[str, np.ndarray]  # per-lane values, int64
    predicates: Dict[str, np.ndarray]
    cycles: int
    instructions_issued: int
    lds_replays: int

    def lane_values(self, reg: str) -> np.ndarray:
        try:
            return self.registers[reg]
        except KeyError:
            raise KeyError(f"register {reg!r} was never written") from None


class WarpSimulator:
    """Executes a :class:`WarpProgram` over 32 lockstep lanes."""

    def __init__(self, shared_memory: Optional[np.ndarray] = None):
        # Shared memory as an array of bytes (uint8).
        self.shared = (
            np.zeros(0, dtype=np.uint8)
            if shared_memory is None
            else np.asarray(shared_memory, dtype=np.uint8)
        )

    # ---- helpers -----------------------------------------------------------------

    @staticmethod
    def _read(regs: Dict[str, np.ndarray], op: Operand) -> np.ndarray:
        if isinstance(op, str):
            try:
                return regs[op]
            except KeyError:
                raise KeyError(f"read of unwritten register {op!r}") from None
        # Immediates are 64-bit patterns; wrap into the signed register
        # representation (top-bit-set bitmaps stay bit-exact).
        value = int(op) & 0xFFFFFFFFFFFFFFFF
        return np.full(WARP_SIZE, value, dtype=np.uint64).astype(np.int64)

    def _lds16(self, addrs: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Predicated 2-byte shared loads; returns raw uint16 as int64."""
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        for lane in range(WARP_SIZE):
            if not active[lane]:
                continue
            a = int(addrs[lane])
            if a < 0 or a + 2 > self.shared.size:
                raise IndexError(
                    f"lane {lane} LDS out of bounds: address {a} of "
                    f"{self.shared.size} bytes"
                )
            out[lane] = int(self.shared[a]) | (int(self.shared[a + 1]) << 8)
        return out

    @staticmethod
    def _bank_replays(addrs: np.ndarray, active: np.ndarray) -> int:
        """Extra cycles from bank conflicts on one LDS."""
        return bank_conflict_replays(addrs, active)

    # ---- execution -----------------------------------------------------------------

    def run(self, program: WarpProgram) -> WarpResult:
        regs: Dict[str, np.ndarray] = {}
        preds: Dict[str, np.ndarray] = {}
        ready: Dict[str, int] = {}  # cycle each register's value is ready
        cycle = 0
        issued = 0
        total_replays = 0

        for instr in program.instructions:
            # Scoreboard: wait for source operands (and predicate).
            wait = 0
            for op in instr.srcs:
                if isinstance(op, str) and op in ready:
                    wait = max(wait, ready[op])
            if instr.pred is not None and instr.pred in ready:
                wait = max(wait, ready[instr.pred])
            cycle = max(cycle, wait)
            cycle += 1  # issue
            issued += 1

            active = (
                preds[instr.pred].astype(bool)
                if instr.pred is not None
                else np.ones(WARP_SIZE, dtype=bool)
            )

            op = instr.opcode
            latency = _LATENCY[op]
            if op == "NOP":
                continue
            if op == "S_REG":
                result = np.arange(WARP_SIZE, dtype=np.int64)
            elif op == "MOV":
                result = self._read(regs, instr.srcs[0])
            elif op in ("ADD", "SUB", "SHL", "SHR", "AND", "OR"):
                a = self._read(regs, instr.srcs[0])
                b = self._read(regs, instr.srcs[1])
                if op == "ADD":
                    result = a + b
                elif op == "SUB":
                    result = a - b
                elif op == "SHL":
                    au, bu = a.astype(np.uint64), b.astype(np.uint64)
                    result = (au << bu).astype(np.int64)
                elif op == "SHR":
                    au, bu = a.astype(np.uint64), b.astype(np.uint64)
                    result = (au >> bu).astype(np.int64)
                elif op == "AND":
                    result = a & b
                else:
                    result = a | b
            elif op == "POPC":
                a = self._read(regs, instr.srcs[0]).astype(np.uint64)
                result = np.asarray(popcount64(a), dtype=np.int64)
            elif op == "SETP":
                if instr.dest in regs:
                    # Registers and predicates share one scoreboard
                    # (`ready`); a colliding name would silently corrupt
                    # the data register's ready time.
                    raise ValueError(
                        f"SETP dest {instr.dest!r} collides with a data "
                        "register of the same name (register/predicate "
                        "namespaces must be disjoint)"
                    )
                a = self._read(regs, instr.srcs[0])
                preds[instr.dest] = (a != 0).astype(np.int64)
                ready[instr.dest] = cycle + latency
                continue
            elif op == "SEL":
                pd = preds[str(instr.srcs[0])].astype(bool)
                a = self._read(regs, instr.srcs[1])
                b = self._read(regs, instr.srcs[2])
                result = np.where(pd, a, b)
            elif op == "LDS":
                addrs = self._read(regs, instr.srcs[0])
                replays = self._bank_replays(addrs, active)
                total_replays += replays
                latency += replays
                result = self._lds16(addrs, active)
            else:  # pragma: no cover - guarded by Instr validation
                raise AssertionError(op)

            if instr.dest is not None:
                if instr.dest in preds:
                    raise ValueError(
                        f"{op} dest {instr.dest!r} collides with a predicate "
                        "register of the same name (register/predicate "
                        "namespaces must be disjoint)"
                    )
                old = regs.get(instr.dest)
                if instr.pred is not None and old is not None:
                    result = np.where(active, result, old)
                elif instr.pred is not None:
                    result = np.where(active, result, 0)
                regs[instr.dest] = result
                ready[instr.dest] = cycle + latency

        # Drain: the warp retires when every pending result lands.
        finish = max([cycle] + list(ready.values()))
        return WarpResult(
            registers=regs,
            predicates=preds,
            cycles=finish,
            instructions_issued=issued,
            lds_replays=total_replays,
        )
