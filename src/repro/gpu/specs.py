"""GPU device specifications used by the cost model.

Numbers come from vendor datasheets / whitepapers for the two evaluation
platforms of the paper (RTX 4090, RTX A6000) plus an A100 for generality.
Tensor-Core peaks are the *dense* FP16 rates with FP32 accumulation — the
`mma.m16n8k16.f32.f16.f16.f32` path SpInfer uses.

The interconnect fields describe the multi-GPU links of the paper's two
testbeds: the 4090 box is PCIe-only (30.5 GB/s measured), the A6000 box
has pairwise NVLink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = [
    "GPUSpec", "RTX4090", "A6000", "A100_SXM", "H100_PCIE", "RTX3090", "GPUS",
    "get_gpu",
]


@dataclass(frozen=True)
class GPUSpec:
    """Hardware parameters of one GPU model."""

    name: str
    arch: str
    sm_count: int
    boost_clock_ghz: float
    #: Dense FP16 Tensor-Core peak with FP32 accumulate, in TFLOP/s.
    tc_fp16_tflops: float
    #: FP16 CUDA-core peak (2:1 over FP32 on these parts), in TFLOP/s.
    cuda_fp16_tflops: float
    #: FP32 CUDA-core peak, in TFLOP/s.
    cuda_fp32_tflops: float
    #: Integer/bit-op throughput available to SMBD, in Tera-ops/s.
    int_tops: float
    dram_bandwidth_gbs: float
    dram_capacity_gb: float
    l2_cache_mb: float
    shared_mem_per_sm_kb: int
    max_shared_per_block_kb: int
    registers_per_sm: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    #: Whether cp.async / LDGSTS (Ampere+) is available.
    has_async_copy: bool = True
    #: Bandwidth of the inter-GPU link for tensor parallelism, GB/s per dir.
    interconnect_gbs: float = 30.5
    interconnect: str = "pcie"
    #: One-way link latency for a collective hop, microseconds.
    interconnect_latency_us: float = field(default=8.0)

    @property
    def dram_bandwidth_bytes(self) -> float:
        return self.dram_bandwidth_gbs * 1e9

    @property
    def dram_capacity_bytes(self) -> float:
        return self.dram_capacity_gb * 1e9

    @property
    def tc_fp16_flops(self) -> float:
        return self.tc_fp16_tflops * 1e12

    @property
    def cuda_fp16_flops(self) -> float:
        return self.cuda_fp16_tflops * 1e12

    @property
    def int_ops(self) -> float:
        return self.int_tops * 1e12

    @property
    def ridge_ci(self) -> float:
        """Roofline ridge point (FLOP/byte) for the Tensor-Core peak."""
        return self.tc_fp16_flops / self.dram_bandwidth_bytes


RTX4090 = GPUSpec(
    name="RTX4090",
    arch="Ada Lovelace (sm_89)",
    sm_count=128,
    boost_clock_ghz=2.52,
    tc_fp16_tflops=165.2,
    cuda_fp16_tflops=82.6,
    cuda_fp32_tflops=82.6,
    int_tops=41.3,
    dram_bandwidth_gbs=1008.0,
    dram_capacity_gb=24.0,
    l2_cache_mb=72.0,
    shared_mem_per_sm_kb=100,
    max_shared_per_block_kb=99,
    registers_per_sm=65536,
    max_threads_per_sm=1536,
    max_warps_per_sm=48,
    interconnect_gbs=30.5,  # PCIe, as measured in the paper's testbed
    interconnect="pcie",
)

A6000 = GPUSpec(
    name="A6000",
    arch="Ampere (sm_86)",
    sm_count=84,
    boost_clock_ghz=1.80,
    tc_fp16_tflops=154.8,
    cuda_fp16_tflops=38.7,
    cuda_fp32_tflops=38.7,
    int_tops=19.4,
    dram_bandwidth_gbs=768.0,
    dram_capacity_gb=48.0,
    l2_cache_mb=6.0,
    shared_mem_per_sm_kb=100,
    max_shared_per_block_kb=99,
    registers_per_sm=65536,
    max_threads_per_sm=1536,
    max_warps_per_sm=48,
    interconnect_gbs=112.5,  # pairwise NVLink
    interconnect="nvlink",
)

A100_SXM = GPUSpec(
    name="A100-SXM",
    arch="Ampere (sm_80)",
    sm_count=108,
    boost_clock_ghz=1.41,
    tc_fp16_tflops=312.0,
    cuda_fp16_tflops=78.0,
    cuda_fp32_tflops=19.5,
    int_tops=19.5,
    dram_bandwidth_gbs=2039.0,
    dram_capacity_gb=80.0,
    l2_cache_mb=40.0,
    shared_mem_per_sm_kb=164,
    max_shared_per_block_kb=163,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    interconnect_gbs=300.0,
    interconnect="nvlink",
)

H100_PCIE = GPUSpec(
    name="H100-PCIe",
    arch="Hopper (sm_90)",
    sm_count=114,
    boost_clock_ghz=1.76,
    tc_fp16_tflops=756.0,
    cuda_fp16_tflops=102.4,
    cuda_fp32_tflops=51.2,
    int_tops=25.6,
    dram_bandwidth_gbs=2039.0,
    dram_capacity_gb=80.0,
    l2_cache_mb=50.0,
    shared_mem_per_sm_kb=228,
    max_shared_per_block_kb=227,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    interconnect_gbs=64.0,  # PCIe Gen5
    interconnect="pcie",
)

RTX3090 = GPUSpec(
    name="RTX3090",
    arch="Ampere (sm_86)",
    sm_count=82,
    boost_clock_ghz=1.70,
    tc_fp16_tflops=142.0,
    cuda_fp16_tflops=35.6,
    cuda_fp32_tflops=35.6,
    int_tops=17.8,
    dram_bandwidth_gbs=936.0,
    dram_capacity_gb=24.0,
    l2_cache_mb=6.0,
    shared_mem_per_sm_kb=100,
    max_shared_per_block_kb=99,
    registers_per_sm=65536,
    max_threads_per_sm=1536,
    max_warps_per_sm=48,
    interconnect_gbs=25.0,
    interconnect="pcie",
)

GPUS: Dict[str, GPUSpec] = {
    g.name: g for g in (RTX4090, A6000, A100_SXM, H100_PCIE, RTX3090)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by name; raises ``KeyError`` listing the options."""
    try:
        return GPUS[name]
    except KeyError:
        raise KeyError(f"unknown GPU {name!r}; available: {sorted(GPUS)}") from None
