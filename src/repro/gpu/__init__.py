"""GPU substrate: device specs, memory/occupancy/roofline models, and the
mechanistic kernel cost simulator standing in for RTX4090/A6000 silicon."""

from .accelerators import (
    ACCELERATORS,
    AcceleratorSpec,
    cross_accelerator_cr,
    get_accelerator,
)
from .cache import CacheStats, SetAssociativeCache, x_panel_dram_bytes
from .calibration import CALIBRATIONS, KernelCalibration, get_calibration
from .energy import EnergyEstimate, EnergyModel, kernel_energy
from .instructions import (
    ISSUE_THROUGHPUT,
    InstructionMix,
    flash_llm_instruction_mix,
    spinfer_instruction_mix,
)
from .memory import (
    BANK_WIDTH_BYTES,
    NUM_BANKS,
    bank_of,
    count_bank_conflicts,
    dram_transfer_seconds,
    expected_random_scatter_replays,
)
from .occupancy import OccupancyResult, occupancy
from .pipeline import PipelineConfig, PipelineTrace, TaskEvent, simulate_pipeline
from .roofline import (
    RooflinePoint,
    attainable_tflops,
    ci_gemm,
    ci_optimal,
    ci_spmm,
    is_memory_bound,
    roofline_point,
)
from .simulator import KernelProfile, LaunchShape, Traffic, Work, simulate_kernel
from .smbd_program import (
    build_naive_decode,
    build_two_phase_decode,
    run_bitmaptile_decode,
)
from .specs import (
    A100_SXM,
    A6000,
    GPUS,
    H100_PCIE,
    RTX3090,
    RTX4090,
    GPUSpec,
    get_gpu,
)
from .tensor_core import mma_m16n8k16, warp_tile_matmul
from .warp_sim import Instr, WarpProgram, WarpResult, WarpSimulator

__all__ = [
    "A100_SXM",
    "ACCELERATORS",
    "AcceleratorSpec",
    "PipelineConfig",
    "PipelineTrace",
    "TaskEvent",
    "cross_accelerator_cr",
    "get_accelerator",
    "simulate_pipeline",
    "Instr",
    "WarpProgram",
    "WarpResult",
    "WarpSimulator",
    "build_naive_decode",
    "build_two_phase_decode",
    "run_bitmaptile_decode",
    "CacheStats",
    "SetAssociativeCache",
    "x_panel_dram_bytes",
    "ISSUE_THROUGHPUT",
    "InstructionMix",
    "flash_llm_instruction_mix",
    "spinfer_instruction_mix",
    "EnergyEstimate",
    "EnergyModel",
    "kernel_energy",
    "A6000",
    "H100_PCIE",
    "RTX3090",
    "BANK_WIDTH_BYTES",
    "CALIBRATIONS",
    "GPUS",
    "GPUSpec",
    "KernelCalibration",
    "KernelProfile",
    "LaunchShape",
    "NUM_BANKS",
    "OccupancyResult",
    "RTX4090",
    "RooflinePoint",
    "Traffic",
    "Work",
    "attainable_tflops",
    "bank_of",
    "ci_gemm",
    "ci_optimal",
    "ci_spmm",
    "count_bank_conflicts",
    "dram_transfer_seconds",
    "expected_random_scatter_replays",
    "get_calibration",
    "get_gpu",
    "is_memory_bound",
    "mma_m16n8k16",
    "occupancy",
    "roofline_point",
    "simulate_kernel",
    "warp_tile_matmul",
]
