"""Instruction-mix accounting for the SpMM kernels.

Table 1's issue-slot and warp-cycles-per-instruction counters are
functions of *how many instructions* a kernel issues, not just how many
bytes it moves.  This module enumerates the warp-level instruction mix
of the SpInfer and Flash-LLM kernels mechanically from the tile
geometry — LDGSTS loads per GroupTile, ldmatrix per XTile, mma per
TCTile, PopCount/LDS per decoded value — and prices issue bandwidth
with a per-opcode throughput table (Ampere/Ada figures).

The counts also expose the data-path difference of paper Fig. 7: the
Flash-LLM mix contains the register-file round trip (LDG into registers,
STS scatter into shared, LDS back out) that SpInfer's direct
LDGSTS-into-shared path deletes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..core.tca_bme import tca_bme_storage_bytes
from ..kernels.base import SpMMProblem
from .specs import GPUSpec

__all__ = [
    "ISSUE_THROUGHPUT",
    "InstructionMix",
    "spinfer_instruction_mix",
    "flash_llm_instruction_mix",
]

#: Warp-instructions retired per SM per cycle, by opcode class
#: (dual-issue ALU, one LSU port, one TC port — standard Ampere/Ada).
ISSUE_THROUGHPUT: Dict[str, float] = {
    "LDGSTS128": 0.25,  # global->shared async copy, 16B/lane
    "LDG128": 0.25,  # global load into registers
    "STS": 1.0,  # shared store
    "LDS": 1.0,  # shared load
    "LDSM": 0.5,  # ldmatrix.x4
    "POPC": 2.0,  # integer pipe (paired with LOP3)
    "LOP": 2.0,  # bit logic / shifts
    "HMMA": 0.5,  # mma.m16n8k16
    "SYNC": 0.25,  # barriers / cp.async fences
}

#: Bytes per warp-wide 128-bit vector load (32 lanes x 16 B).
_WARP_VEC_BYTES = 512


@dataclass
class InstructionMix:
    """Warp-instruction counts for one kernel launch."""

    kernel: str
    counts: Dict[str, float] = field(default_factory=dict)

    def add(self, opcode: str, count: float) -> None:
        if opcode not in ISSUE_THROUGHPUT:
            raise KeyError(
                f"unknown opcode class {opcode!r}; known: {sorted(ISSUE_THROUGHPUT)}"
            )
        if count < 0:
            raise ValueError("instruction count cannot be negative")
        self.counts[opcode] = self.counts.get(opcode, 0.0) + count

    @property
    def total(self) -> float:
        # Reordering this float fold would shift the committed BENCH
        # checksums; counts insert in fixed emitter order, so the fold
        # order is already pinned.
        # repro: allow S003 audited: fixed insertion order, checksummed
        return sum(self.counts.values())

    def issue_cycles_per_sm(self, gpu: GPUSpec) -> float:
        """SM-cycles needed to issue the mix, spread over the chip."""
        # repro: allow S006 audited: fixed insertion order, checksummed
        cycles = sum(
            count / ISSUE_THROUGHPUT[op] for op, count in self.counts.items()
        )
        return cycles / gpu.sm_count

    def issue_seconds(self, gpu: GPUSpec) -> float:
        return self.issue_cycles_per_sm(gpu) / (gpu.boost_clock_ghz * 1e9)

    def share(self, opcode: str) -> float:
        return self.counts.get(opcode, 0.0) / self.total if self.total else 0.0


def spinfer_instruction_mix(
    problem: SpMMProblem, gt: int = 64
) -> InstructionMix:
    """Warp instructions of the SpInfer-SpMM launch (Algorithm 1).

    Per GroupTile iteration: one LDGSTS stream for bitmaps+values and one
    for the XTile; SMBD issues 1 POPC + ~3 LOP per lane-register plus one
    LDS per surviving value; each TCTile row then runs ``N/8`` mma.
    """
    mix = InstructionMix(kernel="spinfer")
    m, k, n = problem.m, problem.k, problem.n
    density = 1.0 - problem.sparsity

    weight_bytes = tca_bme_storage_bytes(m, k, problem.nnz)
    x_bytes = 2.0 * k * n * math.ceil(m / gt)  # every block row streams X
    mix.add("LDGSTS128", (weight_bytes + x_bytes) / _WARP_VEC_BYTES)

    # Partial edge tiles still decode whole bitmaps, hence ceil.
    num_bt = math.ceil(m / 8) * math.ceil(k / 8)
    mix.add("POPC", num_bt)  # one MaskedPopCount issue per BitmapTile-warp
    mix.add("LOP", 3.0 * num_bt)  # mask build, bit test, offset math
    mix.add("LDS", problem.nnz / 32.0)  # one predicated 2B load per value

    num_tctile = math.ceil(m / 16) * math.ceil(k / 16)
    mix.add("LDSM", num_tctile * max(1.0, n / 16.0))  # XTile fragments
    mix.add("HMMA", num_tctile * max(1.0, n / 8.0))

    iterations = math.ceil(m / gt) * math.ceil(k / gt)
    mix.add("SYNC", 3.0 * iterations)  # commits, waits, barrier
    return mix


def flash_llm_instruction_mix(
    problem: SpMMProblem, tile: int = 64
) -> InstructionMix:
    """Warp instructions of Flash-LLM's Load-as-Sparse-Compute-as-Dense.

    The Tiled-CSL words ride LDG into the register file, scatter into
    shared with STS (bank-conflicted — the replays show up as extra STS
    issue), reload through the normal LDS path, then run the same dense
    mma schedule as SpInfer.
    """
    mix = InstructionMix(kernel="flash_llm")
    m, k, n = problem.m, problem.k, problem.n
    nnz = problem.nnz

    nonzeros_bytes = 4.0 * nnz  # 32-bit packed (value, location) words
    x_bytes = 2.0 * k * n * math.ceil(m / tile)
    mix.add("LDG128", nonzeros_bytes / _WARP_VEC_BYTES)
    mix.add("LDGSTS128", x_bytes / _WARP_VEC_BYTES)

    # Register-file unpack: one STS per non-zero (x3.4 for bank replays),
    # plus location decode bit logic.
    mix.add("STS", 3.4 * nnz / 32.0)
    mix.add("LOP", 2.0 * nnz / 32.0)
    # Dense tiles then reload via LDS/ldmatrix for the mma schedule.
    num_tctile = math.ceil(m / 16) * math.ceil(k / 16)
    mix.add("LDSM", num_tctile * (1.0 + max(1.0, n / 16.0)))
    mix.add("HMMA", num_tctile * max(1.0, n / 8.0))

    iterations = math.ceil(m / tile) * math.ceil(k / tile)
    mix.add("SYNC", 3.0 * iterations)
    return mix
