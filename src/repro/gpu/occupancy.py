"""SM occupancy calculator.

Occupancy — resident warps per SM relative to the hardware maximum — is
limited by whichever per-block resource runs out first: registers, shared
memory, or the thread/warp caps.  The paper's Fig. 12 links SpInfer's low
register footprint (sparse data decoded in shared memory, not parked in
registers) to higher occupancy and therefore better latency hiding; this
module turns per-kernel resource usage into that occupancy number.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import GPUSpec

__all__ = ["OccupancyResult", "occupancy"]

#: Register allocation granularity (registers are allocated per warp in
#: chunks on Ampere/Ada).
_REG_ALLOC_UNIT = 256
_WARP_SIZE = 32


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel config."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float  # fraction of max warps resident
    limiter: str  # "registers" | "shared" | "threads" | "blocks"

    @property
    def full(self) -> bool:
        return self.occupancy >= 0.999


def occupancy(
    gpu: GPUSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_bytes_per_block: int,
    max_blocks_per_sm: int = 32,
) -> OccupancyResult:
    """Compute resident blocks/warps per SM for a kernel configuration."""
    if threads_per_block <= 0 or threads_per_block % _WARP_SIZE:
        raise ValueError("threads_per_block must be a positive multiple of 32")
    if registers_per_thread <= 0:
        raise ValueError("registers_per_thread must be positive")
    if shared_bytes_per_block < 0:
        raise ValueError("shared memory cannot be negative")
    if shared_bytes_per_block > gpu.max_shared_per_block_kb * 1024:
        raise ValueError(
            f"block needs {shared_bytes_per_block} B shared memory; "
            f"{gpu.name} allows at most {gpu.max_shared_per_block_kb} KB"
        )

    warps_per_block = threads_per_block // _WARP_SIZE

    # Registers: allocated per warp, rounded up to the allocation unit.
    regs_per_warp = registers_per_thread * _WARP_SIZE
    regs_per_warp = -(-regs_per_warp // _REG_ALLOC_UNIT) * _REG_ALLOC_UNIT
    blocks_by_regs = gpu.registers_per_sm // (regs_per_warp * warps_per_block)

    blocks_by_shared = (
        gpu.shared_mem_per_sm_kb * 1024 // shared_bytes_per_block
        if shared_bytes_per_block
        else max_blocks_per_sm
    )
    blocks_by_threads = gpu.max_threads_per_sm // threads_per_block

    limits = {
        "registers": blocks_by_regs,
        "shared": blocks_by_shared,
        "threads": blocks_by_threads,
        "blocks": max_blocks_per_sm,
    }
    limiter = min(limits, key=limits.__getitem__)
    blocks = max(0, int(limits[limiter]))
    warps = min(blocks * warps_per_block, gpu.max_warps_per_sm)
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / gpu.max_warps_per_sm,
        limiter=limiter,
    )
