"""Shared-memory bank model and DRAM transfer pricing.

NVIDIA shared memory is organised as 32 banks of 4-byte words; a warp
access that maps several lanes to *different words of the same bank* is
replayed once per extra word.  SpInfer's SMBD reads the compressed value
stream coalesced (conflict-free), whereas Flash-LLM's unpack *writes*
each non-zero to its decompressed location — effectively a random scatter
— and eats replays (paper Fig. 12).  The functions here count replays
exactly for a concrete address set and in expectation for random scatter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "NUM_BANKS",
    "BANK_WIDTH_BYTES",
    "bank_of",
    "count_bank_conflicts",
    "expected_random_scatter_replays",
    "dram_transfer_seconds",
]

NUM_BANKS = 32
BANK_WIDTH_BYTES = 4


def bank_of(byte_address: int) -> int:
    """Shared-memory bank serving a byte address."""
    if byte_address < 0:
        raise ValueError("address must be non-negative")
    return (byte_address // BANK_WIDTH_BYTES) % NUM_BANKS


def count_bank_conflicts(byte_addresses: Sequence[int]) -> int:
    """Replays for one warp access to the given per-lane byte addresses.

    Lanes hitting the *same 4-byte word* broadcast (no conflict); lanes
    hitting different words of one bank serialise.  The returned count is
    the number of extra cycles (replays) beyond the first access:
    ``max_over_banks(distinct words in bank) - 1``.
    """
    addrs = np.asarray(byte_addresses, dtype=np.int64)
    if addrs.size == 0:
        return 0
    if np.any(addrs < 0):
        raise ValueError("addresses must be non-negative")
    words = addrs // BANK_WIDTH_BYTES
    banks = words % NUM_BANKS
    worst = 0
    for b in np.unique(banks):
        worst = max(worst, len(np.unique(words[banks == b])))
    return worst - 1


def expected_random_scatter_replays(
    lanes: int = 32, banks: int = NUM_BANKS, samples: int = 2048, seed: int = 0
) -> float:
    """Expected replays when each lane writes a uniformly random word.

    This models Flash-LLM's sparse-to-dense shared-memory scatter: the
    destination of each non-zero is data-dependent and effectively
    uniform.  Monte-Carlo with a fixed seed (deterministic); for 32 lanes
    over 32 banks the expectation is ~2.4 replays per warp write, i.e. a
    ~3.4x slowdown of the store.
    """
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, banks, size=(samples, lanes))
    counts = np.zeros((samples, banks), dtype=np.int64)
    rows = np.repeat(np.arange(samples), lanes)
    np.add.at(counts, (rows, draws.reshape(-1)), 1)
    return float(np.mean(counts.max(axis=1) - 1))


def dram_transfer_seconds(
    num_bytes: float, bandwidth_bytes_per_s: float, efficiency: float = 1.0
) -> float:
    """Time to move ``num_bytes`` at the given efficiency of peak bandwidth."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    if not 0 < efficiency <= 1:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    return num_bytes / (bandwidth_bytes_per_s * efficiency)
