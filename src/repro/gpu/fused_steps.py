"""Fused per-layer SpMM + decode step descriptors for compiled plans.

The interpreted serving loop prices every decode iteration by walking
the model's weight matrices and profiling one SpMM per matrix through
the mechanistic cost model (:meth:`repro.llm.inference.InferenceEngine.
decode_step_seconds`).  A compiled :class:`~repro.plan.ir.ExecutionPlan`
does that walk **once per distinct (batch, context-bucket) pair** at
compile time and stores the result here: a :class:`FusedDecodeStep` is
the flat launch sequence of one decode iteration — every per-layer SpMM
collapsed to one :class:`KernelLaunch` per distinct weight shape with a
repetition count, each launch carrying the memo key and content
checksum of the weight-format conversion backing it (the E003 linting
surface).

Nothing in this module imports the plan package: the conversion memo is
supplied as a ``convert(name, m, k, sparsity) -> (key, checksum)``
callback, keeping the dependency direction ``plan -> gpu``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

__all__ = ["KernelLaunch", "FusedDecodeStep", "build_fused_decode_step"]

#: Average decode contexts are bucketed to multiples of this many tokens
#: so one descriptor serves every iteration in the bucket.
CONTEXT_BUCKET_TOKENS = 64


@dataclass(frozen=True)
class KernelLaunch:
    """One SpMM launch of a fused decode step (repeated ``count`` x)."""

    name: str
    m: int
    k: int
    n: int
    sparsity: float
    #: Launch repetitions across layers (and fused weight counts).
    count: int
    #: Cost-model time of ONE launch on the plan's GPU.
    time_s: float
    #: Conversion-memo entry backing this launch's encoded weights.
    memo_key: str
    #: Content checksum the memo entry must still carry (E003).
    weight_checksum: str


@dataclass(frozen=True)
class FusedDecodeStep:
    """One decode iteration, lowered to a flat launch sequence."""

    batch: int
    #: ``avg_context`` rounded up to the bucket boundary.
    context_bucket: int
    launches: Tuple[KernelLaunch, ...]

    @property
    def spmm_s(self) -> float:
        """Total modelled SpMM time of the fused launch sequence."""
        return sum(ln.time_s * ln.count for ln in self.launches)

    @property
    def num_launches(self) -> int:
        return sum(ln.count for ln in self.launches)


def context_bucket(avg_context: float) -> int:
    """Bucket boundary covering ``avg_context`` tokens."""
    b = CONTEXT_BUCKET_TOKENS
    return max(b, int(-(-avg_context // b) * b))


def build_fused_decode_step(
    model,
    gpu,
    sparsity: float,
    batch: int,
    avg_context: float,
    convert: Callable[[str, int, int, float], Tuple[str, str]],
    kernel_name: str = "spinfer",
) -> FusedDecodeStep:
    """Lower one decode iteration into a :class:`FusedDecodeStep`.

    ``convert`` is the plan compiler's conversion-memo hook: called once
    per layer per weight matrix (so the memo's hit statistics reflect
    the real conversion reuse), it returns the ``(memo_key, checksum)``
    pair stamped onto the matrix's launch.
    """
    from ..kernels import SpMMProblem, make_kernel

    kern = make_kernel(kernel_name)
    launches = []
    for w in model.weight_matrices():
        # Conversions happen per layer instance; identical shapes hit
        # the memo after layer 0 (that is the memoization story).
        key = checksum = ""
        for _layer in range(model.num_layers):
            key, checksum = convert(w.name, w.m, w.k, sparsity)
        problem = SpMMProblem(m=w.m, k=w.k, n=max(1, batch), sparsity=sparsity)
        profile = kern.profile(problem, gpu)
        launches.append(
            KernelLaunch(
                name=w.name,
                m=w.m,
                k=w.k,
                n=max(1, batch),
                sparsity=sparsity,
                count=model.num_layers * w.count,
                time_s=profile.time_s,
                memo_key=key,
                weight_checksum=checksum,
            )
        )
    return FusedDecodeStep(
        batch=batch,
        context_bucket=context_bucket(avg_context),
        launches=tuple(launches),
    )
