"""Numeric model of the FP16 Tensor-Core ``mma.m16n8k16`` instruction.

:func:`mma_m16n8k16` executes the instruction at warp granularity on
fragment tensors laid out exactly as the hardware distributes them across
lanes (see :mod:`repro.core.mma_layout`).  Arithmetic matches the
hardware contract: FP16 multiplicands, FP32 accumulation.

:func:`warp_tile_matmul` composes mma calls over a 16x16 A tile and a
16xN B panel the way one warp of the SpInfer kernel does — the path the
functional kernel uses after SMBD has populated the A fragments.
"""

from __future__ import annotations

import numpy as np

from ..core.mma_layout import (
    MMA_K,
    MMA_M,
    MMA_N,
    WARP_SIZE,
    gather_b_fragments,
    gather_cd_fragments,
    scatter_a_fragments,
    scatter_cd_fragments,
)

__all__ = ["mma_m16n8k16", "warp_tile_matmul"]


def mma_m16n8k16(
    a_frags: np.ndarray, b_frags: np.ndarray, c_frags: np.ndarray
) -> np.ndarray:
    """One warp-wide mma: ``D = A (16x16 f16) @ B (16x8 f16) + C (f32)``.

    Fragments use the lane layouts of :mod:`repro.core.mma_layout`:
    ``a_frags (32, 4, 2)`` f16, ``b_frags (32, 2, 2)`` f16, ``c_frags
    (32, 4)`` f32.  Returns the D fragments, shape ``(32, 4)`` f32.

    Internally the operands are reassembled to matrices and multiplied in
    FP32 — numerically identical to the hardware's FP16-multiply /
    FP32-accumulate for these operand magnitudes (each dot product is 16
    terms; products of two FP16 values are exact in FP32).
    """
    a_frags = np.asarray(a_frags)
    b_frags = np.asarray(b_frags)
    c_frags = np.asarray(c_frags, dtype=np.float32)
    if a_frags.shape != (WARP_SIZE, 4, 2):
        raise ValueError(f"A fragments must be (32, 4, 2), got {a_frags.shape}")
    if b_frags.shape != (WARP_SIZE, 2, 2):
        raise ValueError(f"B fragments must be (32, 2, 2), got {b_frags.shape}")
    if c_frags.shape != (WARP_SIZE, 4):
        raise ValueError(f"C fragments must be (32, 4), got {c_frags.shape}")

    a = scatter_a_fragments(a_frags).astype(np.float32)
    # B gathers/scatters share index maps; rebuild B via the C/D scatter of
    # its transpose-free layout: easiest is an explicit inverse gather.
    b = _scatter_b_fragments(b_frags).astype(np.float32)
    c = scatter_cd_fragments(c_frags)
    d = a @ b + c
    return gather_cd_fragments(d)


def _scatter_b_fragments(frags: np.ndarray) -> np.ndarray:
    """Reassemble the 16x8 B tile from fragments ``(32, 2, 2)``."""
    from ..core.mma_layout import b_fragment_index

    tile = np.zeros((MMA_K, MMA_N), dtype=frags.dtype)
    for lane in range(WARP_SIZE):
        for reg in range(2):
            for half in (0, 1):
                r, c = b_fragment_index(lane, reg, half)
                tile[r, c] = frags[lane, reg, half]
    return tile


def warp_tile_matmul(
    a_frags: np.ndarray, b_panel: np.ndarray, acc: np.ndarray
) -> np.ndarray:
    """Multiply one decoded 16x16 A tile by a 16xN B panel via mma calls.

    ``b_panel`` is ``(16, N)`` f16 with ``N`` a multiple of 8 (each mma
    consumes an 16x8 slice); ``acc`` is the running ``(16, N)`` f32
    accumulator.  Returns the updated accumulator.  This mirrors the
    innermost loop of the SpInfer kernel: fragments stay resident while
    the B panel streams through ``ldmatrix`` loads.
    """
    b_panel = np.asarray(b_panel)
    acc = np.asarray(acc, dtype=np.float32)
    if b_panel.shape[0] != MMA_K:
        raise ValueError(f"B panel must have {MMA_K} rows, got {b_panel.shape}")
    if b_panel.shape[1] % MMA_N:
        raise ValueError(f"B panel columns must be a multiple of {MMA_N}")
    if acc.shape != (MMA_M, b_panel.shape[1]):
        raise ValueError("accumulator shape must match (16, N)")

    out = acc.copy()
    for j in range(0, b_panel.shape[1], MMA_N):
        b_frags = gather_b_fragments(b_panel[:, j : j + MMA_N])
        c_frags = gather_cd_fragments(out[:, j : j + MMA_N])
        d_frags = mma_m16n8k16(a_frags, b_frags, c_frags)
        out[:, j : j + MMA_N] = scatter_cd_fragments(d_frags)
    return out
