"""Mechanistic kernel-execution cost model.

The simulator prices one kernel launch from first principles:

``t_mem``
    DRAM bytes (weights in their exact encoded size + activations +
    outputs + split-K workspace) over achieved bandwidth.
``t_compute``
    Tensor-Core and/or CUDA-core FLOPs over achieved throughput, scaled
    by the occupancy-derived utilisation.
``t_decode``
    Sparse-decode work (SMBD popcounts and loads, Tiled-CSL unpacking,
    …) priced per value on the integer pipes, inflated by shared-memory
    bank replays.

With the asynchronous pipeline the three streams overlap — the kernel
costs ``max(t_mem, t_compute + exposed decode)`` where only the
non-hidden decode residue is exposed (paper Section 4.3.4).  Without it,
the per-iteration stages serialise.  Nsight-style counters (Fig. 12 /
Table 1) fall out of the same quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .calibration import KernelCalibration
from .occupancy import OccupancyResult, occupancy
from .specs import GPUSpec

__all__ = ["LaunchShape", "Traffic", "Work", "KernelProfile", "simulate_kernel"]

#: Bytes one warp-wide LDGSTS.128 / LDG.128 instruction moves (32 x 16 B).
_BYTES_PER_WARP_LOAD = 512
#: FLOPs of one mma.m16n8k16 (2 * 16 * 8 * 16).
_FLOPS_PER_MMA = 4096
#: Issue slots per SM per cycle (4 schedulers on Ampere/Ada).
_ISSUE_SLOTS_PER_SM = 4


@dataclass(frozen=True)
class LaunchShape:
    """Grid geometry of a launch."""

    grid_blocks: int

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError("grid must contain at least one block")


@dataclass(frozen=True)
class Traffic:
    """DRAM traffic of one launch, in bytes."""

    weight_bytes: float
    activation_bytes: float = 0.0
    output_bytes: float = 0.0
    workspace_bytes: float = 0.0  # split-K partials written + re-read

    def __post_init__(self) -> None:
        for name in (
            "weight_bytes", "activation_bytes", "output_bytes", "workspace_bytes"
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def total(self) -> float:
        return (
            self.weight_bytes
            + self.activation_bytes
            + self.output_bytes
            + self.workspace_bytes
        )


@dataclass(frozen=True)
class Work:
    """Arithmetic and decode work of one launch."""

    tc_flops: float = 0.0
    cuda_flops: float = 0.0
    decode_values: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tc_flops", "cuda_flops", "decode_values"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass
class KernelProfile:
    """Predicted time plus Nsight-style counters for one launch."""

    kernel: str
    gpu: str
    time_s: float
    t_mem_s: float
    t_tc_s: float
    t_cuda_s: float
    t_decode_s: float
    t_decode_exposed_s: float
    dram_bytes: float
    bandwidth_utilization: float  # fraction of DRAM peak over the launch
    tc_utilization: float  # fraction of TC peak over the launch
    registers_per_thread: int
    occupancy: OccupancyResult
    wave_utilization: float
    bank_conflict_replays: float
    issue_slot_busy: float
    warp_cycles_per_inst: float
    warp_instructions: float = field(repr=False, default=0.0)

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6

    @property
    def tflops(self) -> float:
        """Achieved dense-equivalent TFLOP/s (TC + CUDA-core FLOPs)."""
        total_flops = 0.0
        if self.time_s > 0:
            total_flops = (self._tc_flops + self._cuda_flops) / self.time_s
        return total_flops / 1e12

    # Stashed for tflops; not part of the public counter set.
    _tc_flops: float = field(repr=False, default=0.0)
    _cuda_flops: float = field(repr=False, default=0.0)


def simulate_kernel(
    gpu: GPUSpec,
    cal: KernelCalibration,
    shape: LaunchShape,
    traffic: Traffic,
    work: Work,
    occupancy_override: Optional[OccupancyResult] = None,
) -> KernelProfile:
    """Price one kernel launch on ``gpu`` under calibration ``cal``."""
    occ = occupancy_override or occupancy(
        gpu,
        threads_per_block=cal.threads_per_block,
        registers_per_thread=cal.registers_per_thread,
        shared_bytes_per_block=cal.shared_bytes_per_block,
    )
    if occ.blocks_per_sm == 0:
        raise ValueError(
            f"kernel {cal.name} cannot fit a single block on {gpu.name}"
        )

    # Wave quantisation: the final partial wave leaves SMs idle.
    blocks_per_wave = occ.blocks_per_sm * gpu.sm_count
    waves = math.ceil(shape.grid_blocks / blocks_per_wave)
    wave_util = shape.grid_blocks / (waves * blocks_per_wave)
    # A single partial wave cannot exploit full-chip bandwidth either, but
    # the effect saturates quickly; clamp so tiny grids aren't priced as
    # if they used one SM's worth of bandwidth.
    eff_util = max(wave_util, 0.25)

    bw = gpu.dram_bandwidth_bytes
    t_mem = traffic.total / (bw * cal.mem_efficiency * eff_util)

    t_tc = 0.0
    if work.tc_flops:
        if cal.tc_efficiency <= 0:
            raise ValueError(f"kernel {cal.name} has no Tensor-Core path")
        t_tc = work.tc_flops / (gpu.tc_fp16_flops * cal.tc_efficiency * eff_util)

    t_cuda = 0.0
    if work.cuda_flops:
        if cal.cuda_efficiency <= 0:
            raise ValueError(f"kernel {cal.name} has no CUDA-core path")
        t_cuda = work.cuda_flops / (
            gpu.cuda_fp16_flops * cal.cuda_efficiency * eff_util
        )

    t_decode = 0.0
    if work.decode_values:
        decode_ops = work.decode_values * cal.decode_ops_per_value
        t_decode = (
            decode_ops * cal.bank_conflict_factor / (gpu.int_ops * eff_util)
        )

    t_compute = t_tc + t_cuda
    exposed_decode = t_decode * (1.0 - cal.decode_overlap)
    # Pipelined composition: the critical stage hides a ``stage_overlap``
    # fraction of the rest; the residue serialises (Section 4.3.4).
    critical = max(t_mem, t_compute + exposed_decode)
    serial_sum = t_mem + t_compute + exposed_decode
    t_exec = critical + (1.0 - cal.stage_overlap) * (serial_sum - critical)

    time_s = t_exec + cal.launch_overhead_us * 1e-6

    # ---- counters -----------------------------------------------------------
    bw_util = traffic.total / (time_s * bw)
    tc_util = work.tc_flops / gpu.tc_fp16_flops / time_s if work.tc_flops else 0.0

    load_warp_insts = traffic.total / _BYTES_PER_WARP_LOAD
    mma_warp_insts = work.tc_flops / _FLOPS_PER_MMA
    cuda_warp_insts = work.cuda_flops / (2 * 32)  # 1 FMA lane-op each
    decode_warp_insts = (
        work.decode_values * cal.decode_ops_per_value / 32
        if work.decode_values
        else 0.0
    )
    warp_insts = (
        load_warp_insts + mma_warp_insts + cuda_warp_insts + decode_warp_insts
    )

    clock_hz = gpu.boost_clock_ghz * 1e9
    issue_capacity = time_s * clock_hz * gpu.sm_count * _ISSUE_SLOTS_PER_SM
    issue_slot_busy = min(1.0, warp_insts / issue_capacity) if issue_capacity else 0.0

    resident_warps = occ.warps_per_sm * gpu.sm_count * wave_util
    warp_cycles_per_inst = (
        time_s * clock_hz * resident_warps / warp_insts if warp_insts else 0.0
    )

    replays = (
        work.decode_values / 32 * (cal.bank_conflict_factor - 1.0)
        if work.decode_values
        else 0.0
    )

    profile = KernelProfile(
        kernel=cal.name,
        gpu=gpu.name,
        time_s=time_s,
        t_mem_s=t_mem,
        t_tc_s=t_tc,
        t_cuda_s=t_cuda,
        t_decode_s=t_decode,
        t_decode_exposed_s=exposed_decode,
        dram_bytes=traffic.total,
        bandwidth_utilization=bw_util,
        tc_utilization=tc_util,
        registers_per_thread=cal.registers_per_thread,
        occupancy=occ,
        wave_utilization=wave_util,
        bank_conflict_replays=replays,
        issue_slot_busy=issue_slot_busy,
        warp_cycles_per_inst=warp_cycles_per_inst,
        warp_instructions=warp_insts,
    )
    profile._tc_flops = work.tc_flops
    profile._cuda_flops = work.cuda_flops
    return profile
