"""Set-associative cache model (the L2 behind the traffic assumptions).

The kernel cost model counts the activation panel ``X`` once in DRAM
traffic, arguing decode-phase panels fit L2 and are served from cache
for every thread block after the first touch.  This module provides an
LRU set-associative cache simulator plus the access-trace analysis that
*checks* the assumption: replaying the SpMM kernel's X-access pattern
(every M-row block streaming the same K-slices) through an L2-sized
cache and reporting the DRAM bytes actually generated.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

__all__ = ["CacheStats", "SetAssociativeCache", "x_panel_dram_bytes"]

#: GPU L2 line size in bytes.
LINE_BYTES = 128


@dataclass
class CacheStats:
    """Access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def dram_bytes(self) -> float:
        """Bytes fetched from DRAM (one line per miss)."""
        return self.misses * LINE_BYTES


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, capacity_bytes: int, ways: int = 16,
                 line_bytes: int = LINE_BYTES):
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("capacity, ways and line size must be positive")
        num_lines = capacity_bytes // line_bytes
        if num_lines < ways:
            raise ValueError("cache smaller than one set")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, num_lines // ways)
        # Each set: OrderedDict of tag -> None, LRU order (oldest first).
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // self.line_bytes
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets.setdefault(set_idx, OrderedDict())
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        entries[tag] = None
        if len(entries) > self.ways:
            entries.popitem(last=False)
            self.stats.evictions += 1
        return False

    def access_range(self, start: int, num_bytes: int) -> None:
        """Touch every line covering ``[start, start + num_bytes)``."""
        if num_bytes <= 0:
            return
        first = start // self.line_bytes
        last = (start + num_bytes - 1) // self.line_bytes
        for line in range(first, last + 1):
            self.access(line * self.line_bytes)


def x_panel_dram_bytes(
    k: int,
    n: int,
    m_blocks: int,
    l2_bytes: int,
    tile_k: int = 64,
    element_bytes: int = 2,
    blocks_per_wave: int = 128,
) -> float:
    """DRAM bytes for the X panel under the kernel's access pattern.

    ``m_blocks`` thread blocks each stream the full ``K x N`` panel in
    ``tile_k``-row slices.  Blocks execute in waves of
    ``blocks_per_wave``; within a wave the scheduler keeps blocks
    roughly in phase, so concurrent reads of a slice coalesce in L2.
    Across waves reuse only survives if the whole panel still fits —
    this is exactly the decode/prefill asymmetry: a 256 KB decode panel
    is fetched once, a 64 MB prefill panel is re-streamed per wave on a
    6 MB L2.  Returns the bytes L2 requests from DRAM.
    """
    if k <= 0 or n <= 0 or m_blocks <= 0:
        raise ValueError("k, n and m_blocks must be positive")
    if blocks_per_wave <= 0:
        raise ValueError("blocks_per_wave must be positive")
    cache = SetAssociativeCache(l2_bytes)
    slice_bytes = tile_k * n * element_bytes
    num_slices = -(-k // tile_k)
    waves = -(-m_blocks // blocks_per_wave)
    for _wave in range(waves):
        for s in range(num_slices):
            base = s * slice_bytes
            # Concurrent blocks of the wave touch the slice back to back;
            # after the first fetch the rest hit, so one pass suffices.
            cache.access_range(base, slice_bytes)
            cache.access_range(base, slice_bytes)
    return cache.stats.dram_bytes
