"""Per-kernel efficiency constants for the cost model.

The simulator in :mod:`repro.gpu.simulator` is mechanistic: times follow
from byte counts, FLOP counts and decode-operation counts, which are all
derived from the formats' exact storage equations and the kernels'
algorithms.  What cannot be derived from first principles is how close
each *implementation* gets to hardware peaks; those scalars live here,
each tied to the paper datum (or vendor datum) it reproduces, and are
held fixed across every experiment.

Register/thread-block figures reproduce the ordering of paper Fig. 12
(SpInfer uses the fewest registers; Flash-LLM the most, because Tiled-CSL
non-zeros stage through the register file).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["KernelCalibration", "CALIBRATIONS", "get_calibration"]


@dataclass(frozen=True)
class KernelCalibration:
    """Implementation-efficiency constants for one kernel."""

    name: str
    #: Fraction of DRAM peak the kernel's global loads achieve.
    mem_efficiency: float
    #: Fraction of Tensor-Core peak in the compute-bound regime
    #: (0 for CUDA-core kernels).
    tc_efficiency: float
    #: Fraction of CUDA-core FP16 peak for value FLOPs.
    cuda_efficiency: float
    #: CUDA-core ops charged per decoded/unpacked sparse value.
    decode_ops_per_value: float
    #: Fraction of decode work hidden behind loads/TC math (async pipe).
    decode_overlap: float
    #: Shared-memory replay multiplier on the decode stage (>= 1).
    bank_conflict_factor: float
    registers_per_thread: int
    threads_per_block: int
    shared_bytes_per_block: int
    #: Whether the kernel uses the cp.async double-buffered pipeline.
    async_pipeline: bool
    launch_overhead_us: float = 4.0
    #: Fraction of the non-critical stages hidden behind the critical one.
    #: 1.0 = perfect overlap (cost = max of stages); 0.0 = fully serial
    #: (cost = sum of stages).  Hardware provides some overlap even
    #: without explicit double buffering, so disabling AsyncPipe only
    #: costs a few percent (Table 1 row 3: +1.98 %).
    stage_overlap: float = 1.0
    #: Half-saturation N of the Tensor-Core pipe (0 disables).  At skinny N
    #: each mma is interleaved with per-tile ldmatrix/decode instructions,
    #: capping the TC pipe well below peak (Table 1 measures 19.1 % TC
    #: utilisation at N = 16); the achieved fraction follows
    #: ``tc_efficiency * N / (N + tc_n_half)``.  Large prefill N amortises
    #: the per-tile work and recovers ``tc_efficiency`` (Fig. 16).
    tc_n_half: float = 0.0

    def tc_efficiency_at(self, n: int, gpu=None) -> float:
        """Effective Tensor-Core efficiency for an ``N``-column panel.

        The ceiling is set by per-tile bookkeeping instructions competing
        with mma issue, so it scales with the chip's TC-peak-to-issue-rate
        ratio: a GPU that issues slowly relative to its Tensor-Core peak
        (A6000: 84 SMs at 1.8 GHz against 154.8 TFLOP/s) saturates later.
        ``tc_n_half`` is calibrated on the RTX4090; other GPUs rescale it.
        """
        if n <= 0:
            raise ValueError("N must be positive")
        if self.tc_n_half <= 0:
            return self.tc_efficiency
        n_half = self.tc_n_half
        if gpu is not None:
            # flops-per-issue-slot of this GPU relative to the RTX4090
            # reference (165.2e12 / (128 SMs * 2.52 GHz)).  Clamped: parts
            # with very wide Tensor Cores (Hopper) also ship asynchronous
            # warp-group mma that removes per-tile issue pressure, so the
            # penalty does not keep growing with the raw ratio.
            ref = 165.2e12 / (128 * 2.52e9)
            this = gpu.tc_fp16_flops / (gpu.sm_count * gpu.boost_clock_ghz * 1e9)
            n_half *= min(this / ref, 2.5)
        return self.tc_efficiency * n / (n + n_half)


CALIBRATIONS: Dict[str, KernelCalibration] = {}


def _register(cal: KernelCalibration) -> KernelCalibration:
    CALIBRATIONS[cal.name] = cal
    return cal


# Dense cuBLAS Tensor-Core GEMM: near-ideal data path (LDGSTS straight to
# shared memory, Fig. 7 "ideal case").  mem_efficiency matches large-tile
# STREAM-like efficiency; tc_efficiency matches cuBLAS's ~90 % of peak on
# large FP16 GEMMs.
CUBLAS_TC = _register(
    KernelCalibration(
        name="cublas_tc",
        mem_efficiency=0.93,
        tc_efficiency=0.90,
        cuda_efficiency=0.0,
        decode_ops_per_value=0.0,
        decode_overlap=1.0,
        bank_conflict_factor=1.0,
        registers_per_thread=110,
        threads_per_block=256,
        shared_bytes_per_block=48 * 1024,
        async_pipeline=True,
        tc_n_half=45.0,
    )
)

# SpInfer: BW efficiency 0.915 reproduces Table 1's 91.5 % Max BW; the TC
# efficiency of 0.80 reproduces Fig. 16's <= 11.8 % deficit vs cuBLAS in
# the compute-bound prefill regime (0.80 / 0.90 = 0.889).  Registers are
# the fewest (Fig. 12) because sparse data is decoded in shared memory.
SPINFER = _register(
    KernelCalibration(
        name="spinfer",
        mem_efficiency=0.915,
        tc_efficiency=0.80,
        cuda_efficiency=0.0,
        decode_ops_per_value=6.0,  # MaskedPopCount + LDS + shuffle per value
        decode_overlap=0.92,
        bank_conflict_factor=1.0,  # SMBD reads are coalesced (Fig. 12)
        registers_per_thread=64,
        threads_per_block=128,
        shared_bytes_per_block=36 * 1024,
        async_pipeline=True,
        tc_n_half=45.0,
    )
)

#: SpInfer with SMBD disabled (Table 1 row 2): decoding falls back to a
#: register-file path — no overlap, many more ops per value, conflicted
#: shared-memory writes, and the LDGSTS direct path is lost.
SPINFER_NO_SMBD = _register(
    replace(
        SPINFER,
        name="spinfer_no_smbd",
        mem_efficiency=0.82,
        decode_ops_per_value=12.0,
        decode_overlap=0.5,
        bank_conflict_factor=3.4,
        registers_per_thread=128,
    )
)

#: SpInfer with the asynchronous pipeline disabled (Table 1 row 3):
#: stages serialise; SMBD still keeps decode cheap.
SPINFER_NO_ASYNC = _register(
    replace(
        SPINFER,
        name="spinfer_no_async",
        decode_overlap=0.0,
        async_pipeline=False,
        stage_overlap=0.95,
    )
)

# Flash-LLM: Tiled-CSL words stage through the register file (LDG.128 then
# shared-memory scatter) — lower load efficiency than the LDGSTS path,
# conflicted scatter writes (Fig. 12), highest register footprint.
FLASH_LLM = _register(
    KernelCalibration(
        name="flash_llm",
        mem_efficiency=0.86,
        tc_efficiency=0.72,
        cuda_efficiency=0.0,
        decode_ops_per_value=9.0,
        decode_overlap=0.80,
        bank_conflict_factor=3.4,  # random scatter over 32 banks
        registers_per_thread=168,
        threads_per_block=128,
        shared_bytes_per_block=44 * 1024,
        async_pipeline=True,
        tc_n_half=45.0,
    )
)

# SparTA: one sparse-TC kernel for the 2:4 half plus a CUDA-core CSR
# kernel for the residual, then a merge. Coordination of the two kernels
# and the fixed dense-in-compressed-form structured operand cap its gains.
SPARTA = _register(
    KernelCalibration(
        name="sparta",
        mem_efficiency=0.80,
        tc_efficiency=0.75,
        cuda_efficiency=0.50,
        decode_ops_per_value=2.0,
        decode_overlap=0.5,
        bank_conflict_factor=1.0,
        registers_per_thread=140,
        threads_per_block=256,
        shared_bytes_per_block=48 * 1024,
        async_pipeline=True,
        tc_n_half=45.0,
        launch_overhead_us=12.0,  # two kernels + merge
    )
)

# Sputnik: CUDA-core CSR SpMM with 1-D tiling; solid engineering but pays
# CSR's 6-byte-per-nnz traffic and forgoes Tensor Cores entirely.
SPUTNIK = _register(
    KernelCalibration(
        name="sputnik",
        mem_efficiency=0.75,
        tc_efficiency=0.0,
        cuda_efficiency=0.55,
        decode_ops_per_value=2.0,
        decode_overlap=0.7,
        bank_conflict_factor=1.0,
        registers_per_thread=96,
        threads_per_block=128,
        shared_bytes_per_block=24 * 1024,
        async_pipeline=True,
    )
)

# cuSPARSE: generic row-split CSR SpMM; on tall-skinny LLM shapes with a
# handful of dense columns it achieves a tiny fraction of peak (paper:
# 18-25x slower than SpInfer), dominated by uncoalesced gathers.
CUSPARSE = _register(
    KernelCalibration(
        name="cusparse",
        mem_efficiency=0.20,
        tc_efficiency=0.0,
        cuda_efficiency=0.08,
        decode_ops_per_value=4.0,
        decode_overlap=0.0,
        bank_conflict_factor=1.0,
        registers_per_thread=64,
        threads_per_block=256,
        shared_bytes_per_block=8 * 1024,
        async_pipeline=False,
        stage_overlap=0.0,
    )
)

# SMaT: BSR Tensor-Core SpMM for scientific matrices; skips empty 16x16
# blocks entirely. Block bookkeeping costs it some load efficiency at
# LLM-level sparsity where nothing can be skipped (Fig. 11).
SMAT = _register(
    KernelCalibration(
        name="smat",
        mem_efficiency=0.80,
        tc_efficiency=0.78,
        cuda_efficiency=0.0,
        decode_ops_per_value=0.5,
        decode_overlap=0.9,
        bank_conflict_factor=1.0,
        registers_per_thread=120,
        threads_per_block=128,
        shared_bytes_per_block=32 * 1024,
        async_pipeline=True,
        tc_n_half=45.0,
    )
)


def get_calibration(name: str) -> KernelCalibration:
    """Look up a kernel's calibration; raises ``KeyError`` with options."""
    try:
        return CALIBRATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(CALIBRATIONS)}"
        ) from None
