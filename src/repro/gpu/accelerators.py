"""Cross-accelerator TCA-BME tilings (paper Section 6).

The paper argues the format generalises: "The TCA-BME tiling strategy
can be tailored to different matrix multiplication units, such as
Google TPU, AMD Matrix Cores, and Intel AMX, by aligning the tile
configurations with their respective specifications", and SMBD "relies
on basic bitwise operations, which are available across modern
architectures".

This module realises that claim.  Each :class:`AcceleratorSpec` records
a matrix unit's native ``m x k`` operand tile and derives a
:class:`~repro.core.tiles.TileConfig` whose TCTile matches it, choosing
a 64-cell BitmapTile shape that divides the unit tile.  The resulting
configs round-trip through the standard encoder (tested) and keep the
same storage equation (Eq. 9) — only the tile counts change, so the
compression ratio is essentially tiling-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.tca_bme import tca_bme_storage_bytes
from ..core.tiles import TileConfig

__all__ = ["AcceleratorSpec", "ACCELERATORS", "get_accelerator", "cross_accelerator_cr"]


def _pick_bitmap_tile(unit_m: int, unit_k: int) -> Tuple[int, int]:
    """Choose a 64-cell BitmapTile dividing the unit tile, squarest first."""
    for bt_h, bt_w in ((8, 8), (4, 16), (16, 4), (2, 32), (32, 2), (1, 64), (64, 1)):
        if unit_m % bt_h == 0 and unit_k % bt_w == 0:
            return bt_h, bt_w
    raise ValueError(
        f"no 64-cell bitmap tile divides a {unit_m}x{unit_k} matrix unit"
    )


@dataclass(frozen=True)
class AcceleratorSpec:
    """One matrix-multiplication unit and its TCA-BME alignment."""

    name: str
    vendor: str
    unit_name: str  # the native instruction / systolic tile
    unit_m: int  # operand rows consumed per instruction
    unit_k: int  # operand columns (reduction dim) per instruction
    #: GroupTile multiplier: how many unit tiles a work-group processes
    #: per dimension (kept small for units that are already large).
    group_mult: int = 4

    def __post_init__(self) -> None:
        if self.unit_m <= 0 or self.unit_k <= 0:
            raise ValueError("matrix unit dims must be positive")
        if self.unit_m * self.unit_k < 64:
            raise ValueError("matrix unit must cover at least one bitmap tile")
        if self.group_mult <= 0:
            raise ValueError("group_mult must be positive")

    def tile_config(self) -> TileConfig:
        """TCA-BME tiling aligned to this unit's operand tile."""
        bt_h, bt_w = _pick_bitmap_tile(self.unit_m, self.unit_k)
        return TileConfig(
            bt_h=bt_h,
            bt_w=bt_w,
            tt_h=self.unit_m,
            tt_w=self.unit_k,
            gt_h=self.unit_m * self.group_mult,
            gt_w=self.unit_k * self.group_mult,
        )


ACCELERATORS: Dict[str, AcceleratorSpec] = {
    a.name: a
    for a in (
        # NVIDIA: mma.m16n8k16 consumes a 16x16 A tile (the paper's config).
        AcceleratorSpec(
            name="nvidia-tensor-core",
            vendor="NVIDIA",
            unit_name="mma.m16n8k16",
            unit_m=16,
            unit_k=16,
        ),
        # AMD CDNA matrix cores: MFMA F32_16x16x16F16.
        AcceleratorSpec(
            name="amd-matrix-core",
            vendor="AMD",
            unit_name="v_mfma_f32_16x16x16f16",
            unit_m=16,
            unit_k=16,
        ),
        # Intel AMX: a tile register holds 16 rows x 64 bytes = 16x32 FP16.
        AcceleratorSpec(
            name="intel-amx",
            vendor="Intel",
            unit_name="tdpbf16ps tile",
            unit_m=16,
            unit_k=32,
        ),
        # Google TPU v4: 128x128 systolic MXU; one unit tile per group.
        AcceleratorSpec(
            name="google-tpu-mxu",
            vendor="Google",
            unit_name="128x128 MXU pass",
            unit_m=128,
            unit_k=128,
            group_mult=1,
        ),
    )
}


def get_accelerator(name: str) -> AcceleratorSpec:
    """Look up an accelerator spec by name."""
    try:
        return ACCELERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown accelerator {name!r}; available: {sorted(ACCELERATORS)}"
        ) from None


def cross_accelerator_cr(m: int, k: int, sparsity: float) -> Dict[str, float]:
    """Compression ratio of TCA-BME under each accelerator's tiling."""
    nnz = int(round(m * k * (1.0 - sparsity)))
    out = {}
    for name, accel in ACCELERATORS.items():
        storage = tca_bme_storage_bytes(m, k, nnz, accel.tile_config())
        out[name] = (2.0 * m * k) / storage
    return out
