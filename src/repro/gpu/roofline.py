"""Roofline model for the GEMM/SpMM analysis of paper Section 3.2.2.

Compute intensity (CI) definitions follow the paper exactly (FP16
operands, FLOPs per byte of weight + activation traffic, constants
folded out as in Eqs. 6–8):

* GEMM:      ``CI = M*N / (M + N)``                      (Eq. 6)
* SpMM:      ``CI = M*N / (M / CR + N)``                 (Eq. 7)
* Optimal:   ``CI = M*N / (M * (1 - s) + N)``            (Eq. 8)

A kernel's attainable throughput is ``min(peak, CI * bandwidth)``; all
decode-phase LLM SpMM shapes sit far left of the ridge, which is why CR —
and hence indexing overhead — controls performance there.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import GPUSpec

__all__ = [
    "ci_gemm",
    "ci_spmm",
    "ci_optimal",
    "attainable_tflops",
    "RooflinePoint",
    "roofline_point",
    "is_memory_bound",
]


def _check_mn(m: int, n: int) -> None:
    if m <= 0 or n <= 0:
        raise ValueError("M and N must be positive")


def ci_gemm(m: int, n: int) -> float:
    """Compute intensity of dense GEMM (paper Eq. 6), FLOP per FP16 element."""
    _check_mn(m, n)
    return (m * n) / (m + n)


def ci_spmm(m: int, n: int, cr: float) -> float:
    """Compute intensity of SpMM under a format with compression ratio ``cr``
    (paper Eq. 7).  ``cr < 1`` (index-bloated formats) *lowers* CI below
    the dense GEMM baseline."""
    _check_mn(m, n)
    if cr <= 0:
        raise ValueError(f"compression ratio must be positive, got {cr}")
    return (m * n) / (m / cr + n)


def ci_optimal(m: int, n: int, sparsity: float) -> float:
    """Upper-bound CI with zero indexing overhead (paper Eq. 8)."""
    _check_mn(m, n)
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    return (m * n) / (m * (1.0 - sparsity) + n)


def attainable_tflops(ci: float, gpu: GPUSpec, element_bytes: int = 2) -> float:
    """Roofline-attainable TFLOP/s at compute intensity ``ci``.

    ``ci`` is in FLOPs per *element*; ``element_bytes`` converts it to
    FLOPs per byte before applying the bandwidth roof.
    """
    if ci <= 0:
        raise ValueError("compute intensity must be positive")
    flops_per_byte = ci / element_bytes
    bw_roof = flops_per_byte * gpu.dram_bandwidth_bytes
    return min(gpu.tc_fp16_flops, bw_roof) / 1e12


def is_memory_bound(ci: float, gpu: GPUSpec, element_bytes: int = 2) -> bool:
    """True when the bandwidth roof binds at this CI."""
    return (ci / element_bytes) < gpu.ridge_ci


@dataclass(frozen=True)
class RooflinePoint:
    """One (kernel, shape) point on the roofline plot (paper Fig. 4)."""

    label: str
    ci: float
    attainable_tflops: float
    memory_bound: bool


def roofline_point(
    label: str, ci: float, gpu: GPUSpec, element_bytes: int = 2
) -> RooflinePoint:
    """Locate a kernel/shape on a GPU's roofline."""
    return RooflinePoint(
        label=label,
        ci=ci,
        attainable_tflops=attainable_tflops(ci, gpu, element_bytes),
        memory_bound=is_memory_bound(ci, gpu, element_bytes),
    )
