"""Checkpoint serialization for encoded sparse weights.

A deployment framework must persist pruned-and-encoded weights — the
paper's artifact converts OPT checkpoints into its formats on disk.
This module provides versioned ``.npz`` serialization for:

* single :class:`~repro.core.tca_bme.TCABMEMatrix` tensors,
* :class:`~repro.core.quant.QuantizedTCABME` tensors, and
* whole checkpoints (name -> encoded matrix), as one file.

Loads validate structural invariants before returning, so a corrupted
file fails loudly rather than silently decoding garbage.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from .core.quant import QuantizedTCABME
from .core.tca_bme import TCABMEMatrix, encode
from .core.tiles import TileConfig

__all__ = [
    "FORMAT_VERSION",
    "save_tca_bme",
    "load_tca_bme",
    "save_quantized",
    "load_quantized",
    "save_checkpoint",
    "load_checkpoint",
    "encode_checkpoint",
]

FORMAT_VERSION = 1
_MAGIC = "repro-tca-bme"


def _config_array(config: TileConfig) -> np.ndarray:
    return np.array(
        [config.bt_h, config.bt_w, config.tt_h, config.tt_w, config.gt_h, config.gt_w],
        dtype=np.int64,
    )


def _config_from_array(arr: np.ndarray) -> TileConfig:
    vals = [int(v) for v in np.asarray(arr).reshape(-1)]
    if len(vals) != 6:
        raise ValueError("malformed tile-config record")
    return TileConfig(*vals)


def _matrix_fields(matrix: TCABMEMatrix, prefix: str = "") -> Dict[str, np.ndarray]:
    return {
        f"{prefix}shape": np.array(matrix.shape, dtype=np.int64),
        f"{prefix}gtile_offsets": matrix.gtile_offsets,
        f"{prefix}values": matrix.values,
        f"{prefix}bitmaps": matrix.bitmaps,
        f"{prefix}tile_config": _config_array(matrix.config),
    }


def _matrix_from_fields(
    data: Mapping[str, np.ndarray], prefix: str = ""
) -> TCABMEMatrix:
    try:
        matrix = TCABMEMatrix(
            shape=tuple(int(v) for v in data[f"{prefix}shape"]),
            gtile_offsets=np.asarray(data[f"{prefix}gtile_offsets"], dtype=np.uint32),
            values=np.asarray(data[f"{prefix}values"], dtype=np.float16),
            bitmaps=np.asarray(data[f"{prefix}bitmaps"], dtype=np.uint64),
            config=_config_from_array(data[f"{prefix}tile_config"]),
        )
    except KeyError as exc:
        raise ValueError(f"checkpoint is missing field {exc}") from None
    matrix.validate()
    return matrix


def _header() -> Dict[str, np.ndarray]:
    return {
        "magic": np.array(_MAGIC),
        "version": np.array(FORMAT_VERSION, dtype=np.int64),
    }


def _check_header(data: Mapping[str, np.ndarray], path: str) -> None:
    if "magic" not in data or str(data["magic"]) != _MAGIC:
        raise ValueError(f"{path} is not a repro TCA-BME file")
    version = int(data["version"])
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path} uses format version {version}; this build reads "
            f"up to {FORMAT_VERSION}"
        )


def save_tca_bme(path: str, matrix: TCABMEMatrix) -> str:
    """Serialize one encoded matrix; returns the path written."""
    np.savez_compressed(path, **_header(), **_matrix_fields(matrix))
    return path if path.endswith(".npz") else path + ".npz"


def load_tca_bme(path: str) -> TCABMEMatrix:
    """Load and validate one encoded matrix."""
    with np.load(path, allow_pickle=False) as data:
        _check_header(data, path)
        return _matrix_from_fields(data)


def save_quantized(path: str, q: QuantizedTCABME) -> str:
    """Serialize a quantized matrix (codes + scales + indexing)."""
    np.savez_compressed(
        path,
        **_header(),
        **_matrix_fields(q.inner),
        codes=q.codes,
        scales=q.scales,
        bits=np.array(q.bits, dtype=np.int64),
        group_size=np.array(q.group_size, dtype=np.int64),
    )
    return path if path.endswith(".npz") else path + ".npz"


def load_quantized(path: str) -> QuantizedTCABME:
    with np.load(path, allow_pickle=False) as data:
        _check_header(data, path)
        inner = _matrix_from_fields(data)
        q = QuantizedTCABME(
            inner=inner,
            codes=np.asarray(data["codes"], dtype=np.int8),
            scales=np.asarray(data["scales"], dtype=np.float16),
            bits=int(data["bits"]),
            group_size=int(data["group_size"]),
        )
    if q.codes.size != inner.nnz:
        raise ValueError("quantized code count does not match NNZ")
    return q


def save_checkpoint(path: str, tensors: Mapping[str, TCABMEMatrix]) -> str:
    """Serialize a named set of encoded matrices into one file."""
    if not tensors:
        raise ValueError("checkpoint must contain at least one tensor")
    fields: Dict[str, np.ndarray] = dict(_header())
    fields["tensor_names"] = np.array(sorted(tensors), dtype=np.str_)
    for name in tensors:
        if "/" in name:
            raise ValueError(f"tensor name {name!r} may not contain '/'")
        fields.update(_matrix_fields(tensors[name], prefix=f"{name}/"))
    np.savez_compressed(path, **fields)
    return path if path.endswith(".npz") else path + ".npz"


def load_checkpoint(path: str) -> Dict[str, TCABMEMatrix]:
    """Load a multi-tensor checkpoint; every tensor is validated."""
    with np.load(path, allow_pickle=False) as data:
        _check_header(data, path)
        names = [str(n) for n in data["tensor_names"]]
        return {
            name: _matrix_from_fields(data, prefix=f"{name}/") for name in names
        }


def encode_checkpoint(
    path: str, dense_tensors: Mapping[str, np.ndarray]
) -> str:
    """Convenience: encode dense tensors and save in one step."""
    encoded = {name: encode(w) for name, w in dense_tensors.items()}
    return save_checkpoint(path, encoded)
