"""Server-side admission control: buckets, priority tiers, quotas.

This is the SLO-aware front door layered *above* the runtime's own
shed/deadline machinery (:class:`~repro.runtime.faults.RecoveryPolicy`
still owns queue-depth shedding and per-request deadlines inside the
router).  Three mechanisms, modelled on production serving stacks
(DeepSparse's ``route_input_to_bucket``, vLLM's priority queues):

* **Prompt-length buckets** — requests route to the smallest configured
  bucket that holds their prompt; a prompt longer than the largest
  bucket is refused at the door (Q004 audits the routing function).
* **Priority tiers** — pending work releases in ``(priority, arrival,
  request_id)`` order; tier 0 is most urgent.
* **Per-tenant token quotas** — a tenant may hold at most
  ``tenant_quota_tokens`` worst-case in-flight tokens; requests over
  quota *park* (deterministically) until a terminal event releases
  quota, rather than being dropped (Q001 catches quotas no request can
  ever fit under).

Like :class:`~repro.runtime.faults.RecoveryPolicy`, a
:class:`ServerPolicy` is deliberately constructible in broken shapes —
judging it is the Q-rule linter's job, and
:data:`BROKEN_SERVER_POLICIES` ships the fixtures the lint sweep must
flag.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ServerPolicy",
    "SERVER_POLICIES",
    "BROKEN_SERVER_POLICIES",
    "AdmissionGate",
    "get_server_policy",
]


@dataclass(frozen=True)
class ServerPolicy:
    """Front-door admission configuration."""

    name: str
    #: Ascending prompt-length bucket upper bounds (tokens).  A request
    #: routes to the first bucket whose bound >= its prompt length.
    bucket_bounds: Tuple[int, ...] = (128, 512, 2048)
    #: Number of priority tiers (requests carry ``priority`` in
    #: ``[0, tiers)``; out-of-range priorities clamp to the last tier).
    priority_tiers: int = 3
    #: Max worst-case in-flight tokens per tenant; None = unlimited.
    tenant_quota_tokens: Optional[int] = None

    def route_input_to_bucket(self, prompt_len: int) -> Optional[int]:
        """Index of the smallest bucket holding ``prompt_len``, or None
        when the prompt exceeds every bucket (refused at the door)."""
        idx = bisect.bisect_left(self.bucket_bounds, prompt_len)
        return idx if idx < len(self.bucket_bounds) else None

    def clamp_priority(self, priority: int) -> int:
        return max(0, min(priority, self.priority_tiers - 1))


#: Sane builtin policies (the ``repro server`` CLI default first).
SERVER_POLICIES: Dict[str, ServerPolicy] = {
    "standard": ServerPolicy(
        name="standard",
        bucket_bounds=(128, 512, 2048),
        priority_tiers=3,
        tenant_quota_tokens=8192,
    ),
    "open-door": ServerPolicy(
        name="open-door",
        bucket_bounds=(4096,),
        priority_tiers=1,
        tenant_quota_tokens=None,
    ),
}

#: Deliberately broken policies with the Q rules each must trip; the
#: ``repro lint --server`` sweep reconciles findings against this
#: manifest exactly like the broken recovery policies (R family).
BROKEN_SERVER_POLICIES: Dict[str, Tuple[ServerPolicy, Tuple[str, ...]]] = {
    # Quota below the smallest bucket: no request that fits any bucket
    # can ever be admitted for any tenant.
    "starved-quota": (
        ServerPolicy(
            name="starved-quota",
            bucket_bounds=(128, 512),
            priority_tiers=2,
            tenant_quota_tokens=64,
        ),
        ("Q001",),
    ),
    # Unsorted bucket bounds: bisect routing sends boundary prompts to
    # the wrong bucket (and some admissible prompts to no bucket).
    "shuffled-buckets": (
        ServerPolicy(
            name="shuffled-buckets",
            bucket_bounds=(512, 128, 2048),
            priority_tiers=2,
            tenant_quota_tokens=8192,
        ),
        ("Q004",),
    ),
    # Zero priority tiers (parked-release order undefined) plus a
    # duplicated bucket bound (the second 128-bucket is unreachable).
    "no-tiers": (
        ServerPolicy(
            name="no-tiers",
            bucket_bounds=(128, 128, 512),
            priority_tiers=0,
            tenant_quota_tokens=8192,
        ),
        ("Q001", "Q004"),
    ),
}


def get_server_policy(name: str) -> ServerPolicy:
    try:
        return SERVER_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown server policy {name!r}; "
            f"available: {sorted(SERVER_POLICIES)}"
        ) from None


class AdmissionGate:
    """Stateful front door applying a :class:`ServerPolicy`.

    ``offer(req, now)`` either clears the request for submission (and
    charges its tenant's quota) or parks it; terminal notifications
    release quota and pop the highest-priority parked request(s) whose
    tenants now fit.  All ordering is ``(priority, arrival_s,
    request_id)`` — no wall clock, no iteration over unordered
    collections — so the gate replays bit-identically.
    """

    def __init__(self, policy: ServerPolicy) -> None:
        self.policy = policy
        self._in_flight: Dict[str, int] = {}
        self._parked: List[Tuple[int, float, int, object]] = []
        self.refused: List[object] = []
        #: Counters for the server report.
        self.parked_total = 0
        self.bucket_counts: Dict[int, int] = {}

    # ---- accounting -----------------------------------------------------------------

    def _cost(self, req) -> int:
        return req.total_tokens

    def tenant_in_flight(self, tenant: str) -> int:
        return self._in_flight.get(tenant, 0)

    def _fits_quota(self, req) -> bool:
        quota = self.policy.tenant_quota_tokens
        if quota is None:
            return True
        return self.tenant_in_flight(req.tenant) + self._cost(req) <= quota

    # ---- the gate -------------------------------------------------------------------

    def offer(self, req) -> str:
        """Gate one arrival; returns ``"admit"``, ``"park"`` or
        ``"refuse"`` (prompt fits no bucket)."""
        bucket = self.policy.route_input_to_bucket(req.prompt_len)
        if bucket is None:
            self.refused.append(req)
            return "refuse"
        self.bucket_counts[bucket] = self.bucket_counts.get(bucket, 0) + 1
        if not self._fits_quota(req):
            priority = self.policy.clamp_priority(req.priority)
            bisect.insort(
                self._parked,
                (priority, req.arrival_s, req.request_id, req),
            )
            self.parked_total += 1
            return "park"
        self._charge(req)
        return "admit"

    def _charge(self, req) -> None:
        self._in_flight[req.tenant] = (
            self.tenant_in_flight(req.tenant) + self._cost(req)
        )

    def release(self, req) -> List[object]:
        """A request reached a terminal bucket: release its quota and
        return every parked request that now clears the gate, in
        priority order."""
        held = self.tenant_in_flight(req.tenant)
        self._in_flight[req.tenant] = max(0, held - self._cost(req))
        released: List[object] = []
        remaining: List[Tuple[int, float, int, object]] = []
        for entry in self._parked:
            parked_req = entry[3]
            if self._fits_quota(parked_req):
                self._charge(parked_req)
                released.append(parked_req)
            else:
                remaining.append(entry)
        self._parked = remaining
        return released

    @property
    def parked(self) -> List[object]:
        return [entry[3] for entry in self._parked]
