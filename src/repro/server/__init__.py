"""Session-aware streaming server over the fault-tolerant runtime.

The layers, bottom-up:

* :mod:`~repro.server.sessions` — multi-turn session specs, the pinned
  workload generator, and the :class:`SessionManager` that turns
  finished turns into refcounted, copy-on-write KV prefixes (so later
  turns skip re-prefilling shared history) with crash-safe lazy
  invalidation and provable teardown;
* :mod:`~repro.server.admission` — the SLO front door: prompt-length
  buckets, priority tiers, per-tenant token quotas, plus the
  deliberately broken policies the Q-rule lint sweep must flag;
* :mod:`~repro.server.streaming` — :class:`StreamingServer` composing
  gate + router + sessions + one deterministic
  :class:`~repro.runtime.request.TokenStream`, and the byte-stable
  ``repro server --json`` report.

See docs/RUNTIME.md (session lifecycle) and docs/TUTORIAL.md (the
two-turn walkthrough).
"""

from .admission import (
    BROKEN_SERVER_POLICIES,
    SERVER_POLICIES,
    AdmissionGate,
    ServerPolicy,
    get_server_policy,
)
from .sessions import (
    SessionManager,
    SessionPrefix,
    SessionSpec,
    TurnSpec,
    session_workload,
)
from .streaming import (
    ServerConfig,
    StreamingServer,
    build_server,
    run_server,
    server_report,
    server_report_json,
)

__all__ = [
    "ServerPolicy",
    "SERVER_POLICIES",
    "BROKEN_SERVER_POLICIES",
    "AdmissionGate",
    "get_server_policy",
    "TurnSpec",
    "SessionSpec",
    "SessionPrefix",
    "SessionManager",
    "session_workload",
    "ServerConfig",
    "StreamingServer",
    "build_server",
    "run_server",
    "server_report",
    "server_report_json",
]
