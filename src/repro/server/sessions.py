"""Multi-turn sessions and the shared-prefix KV cache.

A chat session re-sends its whole history every turn; without help the
runtime re-prefills tokens it already materialised one turn ago.  The
:class:`SessionManager` closes that loop through two scheduler hooks:

* ``retain_kv(seq_id, req)`` — fired just before a finished turn's
  blocks are freed: the manager forks the sequence into a
  *session-owned* prefix (``owner="session:<id>"``, a negative seq id so
  it can never collide with a request), so the blocks survive the free
  under refcount.
* ``prefix_source(req)`` — consulted at admission: when the arriving
  turn's pool still holds the session's prefix, the scheduler forks it
  copy-on-write and prefills only the new tokens.

Crash safety is *lazy*: a GPU crash wipes the pool's allocator
(``free_all``), so the next lookup sees ``has_sequence() == False``,
drops the registry entry, and the turn re-prefills from scratch — the
reroute-recompute discipline, extended to cached history.  Session
affinity (``FaultTolerantRuntime.submit(req, prefer=pool)``) keeps
turns landing where their prefix lives while that pool is alive.

Teardown is provable: ending a session frees its prefix and audits
``owned_blocks("session:<id>")`` on every pool — anything left is a
leak, reported (and linted, rule Q002) rather than silently stranded.

This module also defines the deterministic multi-turn workload
(:class:`SessionSpec` / :func:`session_workload`): think times and
lengths are pre-drawn from one pinned generator at build time, so the
simulation itself never touches an RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..runtime.events import EventKind

__all__ = [
    "TurnSpec",
    "SessionSpec",
    "SessionPrefix",
    "SessionManager",
    "session_workload",
]


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TurnSpec:
    """One turn of a session: the user adds ``new_tokens`` on top of the
    history and the model answers with ``output_len`` tokens.
    ``think_s`` is the user's pause after the PREVIOUS turn finished
    (ignored for turn 0, which fires at the session's start time)."""

    new_tokens: int
    output_len: int
    think_s: float = 0.0

    def __post_init__(self) -> None:
        if self.new_tokens <= 0 or self.output_len <= 0:
            raise ValueError("turns need positive prompt and output tokens")
        if self.think_s < 0:
            raise ValueError("think time cannot be negative")


@dataclass(frozen=True)
class SessionSpec:
    """A whole conversation, fixed before the simulation starts."""

    session_id: int
    start_s: float
    turns: Tuple[TurnSpec, ...]
    tenant: str = "default"
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.turns:
            raise ValueError("a session needs at least one turn")
        if self.start_s < 0:
            raise ValueError("start time cannot be negative")


def session_workload(
    sessions: int = 8,
    turns: int = 3,
    arrival_rate: float = 2.0,
    mean_new_tokens: int = 96,
    mean_output: int = 48,
    mean_think_s: float = 0.4,
    tenants: Tuple[str, ...] = ("default",),
    priority_tiers: int = 1,
    seed: int = 0,
) -> List[SessionSpec]:
    """Draw a pinned multi-turn workload.

    All randomness happens HERE, in a fixed draw order from one
    ``np.random.default_rng(seed)``; the returned specs are plain data,
    so two servers fed the same seed see byte-identical conversations —
    the property the reuse-vs-no-reuse bench and the ``--json`` replay
    gate both rest on.
    """
    if sessions <= 0 or turns <= 0:
        raise ValueError("need at least one session and one turn")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    out: List[SessionSpec] = []
    start = 0.0
    for sid in range(sessions):
        start += float(rng.exponential(1.0 / arrival_rate))
        n_turns = int(rng.integers(max(1, turns - 1), turns + 2))
        spec_turns = []
        for k in range(n_turns):
            new_tokens = max(8, int(rng.poisson(mean_new_tokens)))
            output_len = max(8, int(rng.poisson(mean_output)))
            think = (
                0.0 if k == 0 else round(float(rng.exponential(mean_think_s)), 6)
            )
            spec_turns.append(
                TurnSpec(
                    new_tokens=new_tokens,
                    output_len=output_len,
                    think_s=think,
                )
            )
        tenant = tenants[int(rng.integers(len(tenants)))]
        priority = int(rng.integers(max(1, priority_tiers)))
        out.append(
            SessionSpec(
                session_id=sid,
                start_s=round(start, 6),
                turns=tuple(spec_turns),
                tenant=tenant,
                priority=priority,
            )
        )
    return out


# ---------------------------------------------------------------------------
# the prefix cache
# ---------------------------------------------------------------------------


@dataclass
class SessionPrefix:
    """Registry entry: where a session's cached history lives."""

    pool: str
    seq_id: int
    tokens: int


class SessionManager:
    """Owns session→prefix bookkeeping across a router's replica pools.

    Construction wires ``prefix_source`` / ``retain_kv`` into every
    scheduler of the :class:`~repro.runtime.faults.FaultTolerantRuntime`
    (or a sequence of standalone schedulers).  With ``enabled=False``
    both hooks stay None and the runtime is bit-identical to a
    session-blind one — that OFF switch is the bench's control arm.
    """

    def __init__(self, runtime, enabled: bool = True) -> None:
        self.runtime = runtime
        self.enabled = enabled
        self._prefixes: Dict[int, SessionPrefix] = {}
        #: Prefix sequences use a dedicated negative id space so they
        #: can never collide with request ids (seq_id = request_id).
        self._next_prefix_id = -1
        self._hit_requests: set = set()
        self._miss_requests: set = set()
        self.invalidations = 0
        self.retained = 0
        self.migrations = 0
        self.migrated_tokens = 0
        self.migration_drops = 0
        #: Prefixes dropped because the receive-side content-tag check
        #: caught a corrupted payload (integrity layer; the session's
        #: next turn recomputes from the prompt instead of forking
        #: poisoned KV).
        self.integrity_drops = 0
        if enabled:
            for sched in runtime.schedulers:
                self.attach_scheduler(sched)

    def attach_scheduler(self, sched) -> None:
        """Wire the prefix hooks into one scheduler.  Called for every
        scheduler at construction, and again by the fleet simulator for
        replicas provisioned mid-run (``FaultTolerantRuntime.add_pool``)
        — a scaled-up pool must cache prefixes like any other."""
        if not self.enabled:
            return
        sched.prefix_source = self._make_prefix_source(sched)
        sched.retain_kv = self._make_retain(sched)

    @staticmethod
    def owner(session_id: int) -> str:
        return f"session:{session_id}"

    # ---- lookups ---------------------------------------------------------------------

    def pool_for(self, session_id) -> Optional[str]:
        """Pool holding the session's prefix (the affinity target)."""
        entry = self._prefixes.get(session_id)
        return entry.pool if entry is not None else None

    def sessions_on(self, pool_name: str) -> List[int]:
        """Sessions whose prefix lives on ``pool_name``, sorted — the
        drain path migrates exactly these before retiring the pool."""
        return sorted(
            sid
            for sid, entry in self._prefixes.items()
            if entry.pool == pool_name
        )

    @property
    def hits(self) -> int:
        """Requests admitted through a live prefix fork."""
        return len(self._hit_requests)

    @property
    def misses(self) -> int:
        """Session requests that wanted a prefix and found none."""
        return len(self._miss_requests)

    # ---- scheduler hooks -------------------------------------------------------------

    def _make_prefix_source(self, sched):
        def source(req):
            session_id = getattr(req, "session_id", None)
            if session_id is None or req.cached_tokens <= 0:
                return None
            entry = self._prefixes.get(session_id)
            if entry is None or entry.pool != sched.pool.name:
                self._miss_requests.add(req.request_id)
                return None
            if not sched.pool.allocator.has_sequence(entry.seq_id):
                # The pool crashed since the prefix was retained:
                # free_all() wiped it.  Drop the stale entry; this turn
                # re-prefills its whole history (recompute discipline).
                del self._prefixes[session_id]
                self.invalidations += 1
                self._miss_requests.add(req.request_id)
                return None
            self._hit_requests.add(req.request_id)
            return entry.seq_id, min(entry.tokens, req.cached_tokens)

        return source

    def _make_retain(self, sched):
        def retain(seq_id: int, req) -> None:
            session_id = getattr(req, "session_id", None)
            if session_id is None:
                return
            # One prefix per session: the finished turn's sequence holds
            # the FULL history (old prefix included via the admission
            # fork), so the old prefix is strictly redundant now.
            self._drop_prefix(session_id)
            prefix_id = self._next_prefix_id
            self._next_prefix_id -= 1
            alloc = sched.pool.allocator
            alloc.fork(seq_id, prefix_id, owner=self.owner(session_id))
            self._prefixes[session_id] = SessionPrefix(
                pool=sched.pool.name,
                seq_id=prefix_id,
                tokens=alloc.sequence(prefix_id).tokens,
            )
            self.retained += 1

        return retain

    # ---- migration (scale-down drain) ------------------------------------------------

    def migrate_prefix(self, session_id, target_sched) -> int:
        """Ship a session's prefix KV to ``target_sched``'s pool instead
        of recomputing it after the source is retired.

        Blocks move between allocators, so this is a fresh allocation on
        the target plus a free on the source (``fork`` only shares
        within one allocator).  Returns the tokens moved; 0 means there
        was nothing live to move (stale entry — dropped), and a target
        without room drops the prefix too (``migration_drops``): the
        session survives, its next turn re-prefills, exactly the lazy
        crash-invalidation discipline.
        """
        entry = self._prefixes.get(session_id)
        if entry is None:
            return 0
        source = self.runtime._by_pool.get(entry.pool)
        if (
            source is None
            or not source.pool.allocator.has_sequence(entry.seq_id)
        ):
            # Crash wiped it since retention; nothing to ship.
            self._prefixes.pop(session_id, None)
            self.invalidations += 1
            return 0
        if target_sched.pool.name == entry.pool:
            return entry.tokens  # already there
        tokens = entry.tokens
        alloc = target_sched.pool.allocator
        if alloc.blocks_needed(tokens) > alloc.free_blocks:
            # No room on the survivor: drop rather than deadlock the
            # drain.  The next turn recomputes from the prompt.
            self._drop_prefix(session_id)
            self.migration_drops += 1
            return 0
        # Receive-side integrity check: the target compares the shipped
        # payload's content tag against the pristine tag for its token
        # count.  A mismatch means the prefix was silently corrupted at
        # the source — drop it (recompute-from-prompt) rather than fork
        # poisoned KV into every future turn of the session.
        src_alloc = source.pool.allocator
        version = src_alloc.sequence(entry.seq_id).payload_version
        pol = getattr(self.runtime, "integrity", None)
        if version != 0 and pol is not None and getattr(pol, "verify_kv", False):
            target_sched.stats.sdc_detected += 1
            target_sched.trace.record(
                target_sched.loop.now,
                EventKind.CORRUPT_DETECTED,
                None,
                target_sched.pool.name,
                source="kv_tag",
                session=session_id,
                tokens=tokens,
            )
            self._drop_prefix(session_id)
            self.integrity_drops += 1
            return 0
        new_id = self._next_prefix_id
        self._next_prefix_id -= 1
        alloc.allocate(new_id, tokens, owner=self.owner(session_id))
        # The payload travels with its integrity generation: a shipped
        # (undetected) corruption stays traceable on the target.
        alloc.sequence(new_id).payload_version = version
        source.pool.allocator.free(entry.seq_id)
        self._prefixes[session_id] = SessionPrefix(
            pool=target_sched.pool.name, seq_id=new_id, tokens=tokens
        )
        self.migrations += 1
        self.migrated_tokens += tokens
        return tokens

    def drop_prefixes_on(self, pool_name: str) -> int:
        """Drop every prefix resident on ``pool_name`` (the
        drain-without-migration path — lint rule A004 flags policies
        that choose this).  Returns how many sessions lost their cache."""
        dropped = 0
        for session_id in self.sessions_on(pool_name):
            self._drop_prefix(session_id)
            self.migration_drops += 1
            dropped += 1
        return dropped

    # ---- teardown --------------------------------------------------------------------

    def _drop_prefix(self, session_id) -> None:
        entry = self._prefixes.pop(session_id, None)
        if entry is None:
            return
        sched = self.runtime._by_pool.get(entry.pool)
        if sched is None:
            return
        alloc = sched.pool.allocator
        if alloc.has_sequence(entry.seq_id):
            alloc.free(entry.seq_id)

    def end_session(self, session_id) -> List[Tuple[str, int]]:
        """Free the session's prefix and PROVE nothing is left: returns
        ``(pool, block)`` pairs still tagged with the session's owner —
        empty on a correct run, non-empty is a leak (lint rule Q002)."""
        self._drop_prefix(session_id)
        leaked: List[Tuple[str, int]] = []
        for sched in self.runtime.schedulers:
            for block in sched.pool.allocator.owned_blocks(
                self.owner(session_id)
            ):
                leaked.append((sched.pool.name, block))
        return leaked

    def teardown(self) -> Dict[int, List[Tuple[str, int]]]:
        """End every live session; maps session_id → leaked blocks for
        any session that failed the post-free audit."""
        leaks: Dict[int, List[Tuple[str, int]]] = {}
        for session_id in sorted(self._prefixes):
            leaked = self.end_session(session_id)
            if leaked:
                leaks[session_id] = leaked
        return leaks
