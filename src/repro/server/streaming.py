"""The session-aware streaming server.

:class:`StreamingServer` is the top of the request-lifecycle stack the
runtime refactor built:

1. a :class:`~repro.server.admission.AdmissionGate` (buckets, priority
   tiers, tenant quotas) decides *whether and when* a turn enters;
2. the :class:`~repro.runtime.faults.FaultTolerantRuntime` routes it to
   a replica pool — with session affinity, so turns chase their prefix;
3. the :class:`~repro.server.sessions.SessionManager` turns finished
   turns into shared KV prefixes and admissions into COW forks;
4. every decoded token flows through one
   :class:`~repro.runtime.request.TokenStream`, flushed end-of-instant
   via ``loop.defer`` so the stream is a deterministic function of the
   workload.

Turn chaining is event-driven: when a turn reaches ANY terminal bucket
the router's ``terminal_listener`` lands here; a completed turn
schedules the session's next turn after its pinned think time, anything
else (shed, failed, timed out, cancelled, refused) aborts the session
and frees its prefix immediately.

Everything — the workload, the gate, routing, token timestamps — is
deterministic, so :func:`server_report` serialises byte-identically
across runs; ``repro server --json`` replays are diffed with ``cmp``
in CI, exactly like the chaos harness.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..llm.serving import ServingConfig, ServingSimulator
from ..runtime import (
    FaultPlan,
    FaultTolerantRuntime,
    RuntimeStats,
    SessionRequest,
    TokenStream,
    builtin_fault_plans,
    get_recovery_policy,
)
from .admission import SERVER_POLICIES, AdmissionGate, ServerPolicy
from .sessions import SessionManager, SessionSpec, session_workload

__all__ = [
    "ServerConfig",
    "StreamingServer",
    "build_server",
    "run_server",
    "server_report",
    "server_report_json",
]


@dataclass(frozen=True)
class ServerConfig:
    """One server scenario: fleet + multi-turn workload + policies."""

    model: str = "opt-13b"
    framework: str = "spinfer"
    gpu: str = "RTX4090"
    replicas: int = 2
    sessions: int = 8
    turns: int = 3
    arrival_rate: float = 2.0
    mean_new_tokens: int = 96
    mean_output: int = 48
    mean_think_s: float = 0.4
    tenants: Tuple[str, ...] = ("acme", "globex")
    seed: int = 5
    max_batch: int = 16
    kv_cap_tokens: Optional[int] = 20000
    policy: str = "fcfs"
    chunk_tokens: int = 128
    server_policy: str = "standard"
    recovery: str = "reroute"
    #: None = fault-free; a builtin plan name injects faults mid-run.
    fault_plan: Optional[str] = None
    #: The control arm: False disables the prefix cache entirely.
    reuse_prefix: bool = True

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("need at least one replica")
        if self.sessions <= 0 or self.turns <= 0:
            raise ValueError("need a positive workload")

    def quick(self) -> "ServerConfig":
        from dataclasses import replace

        return replace(self, sessions=4, turns=2, mean_output=24)

    def workload(self) -> List[SessionSpec]:
        policy = SERVER_POLICIES[self.server_policy]
        return session_workload(
            sessions=self.sessions,
            turns=self.turns,
            arrival_rate=self.arrival_rate,
            mean_new_tokens=self.mean_new_tokens,
            mean_output=self.mean_output,
            mean_think_s=self.mean_think_s,
            tenants=self.tenants,
            priority_tiers=policy.priority_tiers,
            seed=self.seed,
        )


class StreamingServer:
    """Admission gate + replica router + session prefix cache + one
    token stream, driving whole conversations to completion."""

    def __init__(
        self,
        pools: Sequence,
        recovery,
        server_policy: Optional[ServerPolicy] = None,
        reuse_prefix: bool = True,
        policy: str = "fcfs",
        prefill_mode: str = "chunked",
        chunk_tokens: int = 128,
        preemption: bool = True,
        snapshot_every: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        loop=None,
        subscriber=None,
    ) -> None:
        self.runtime = FaultTolerantRuntime(
            pools,
            recovery,
            policy=policy,
            prefill_mode=prefill_mode,
            chunk_tokens=chunk_tokens,
            preemption=preemption,
            snapshot_every=snapshot_every,
            fault_plan=fault_plan,
            loop=loop,
        )
        self.loop = self.runtime.loop
        self.stream = TokenStream(subscriber=subscriber)
        for sched in self.runtime.schedulers:
            sched.stream = self.stream
        self.sessions = SessionManager(self.runtime, enabled=reuse_prefix)
        self.gate = AdmissionGate(
            server_policy
            if server_policy is not None
            else SERVER_POLICIES["standard"]
        )
        self.runtime.terminal_listener = self._on_terminal
        self._specs: Dict[int, SessionSpec] = {}
        self._turn_of: Dict[int, Tuple[int, int]] = {}
        self._history: Dict[int, int] = {}
        self._next_request_id = 0
        #: Every turn materialised as a request, in submission order.
        self.requests: List[SessionRequest] = []
        self.sessions_completed = 0
        self.sessions_aborted = 0
        self.prefix_leaks: Dict[int, List[Tuple[str, int]]] = {}

    # ---- turn lifecycle --------------------------------------------------------------

    def _begin_turn(self, session_id: int, turn_idx: int) -> None:
        spec = self._specs[session_id]
        turn = spec.turns[turn_idx]
        history = self._history.get(session_id, 0)
        req = SessionRequest(
            request_id=self._next_request_id,
            arrival_s=self.loop.now,
            prompt_len=history + turn.new_tokens,
            output_len=turn.output_len,
            session_id=session_id,
            turn=turn_idx,
            tenant=spec.tenant,
            priority=spec.priority,
            cached_tokens=history,
        )
        self._next_request_id += 1
        self.requests.append(req)
        self._turn_of[req.request_id] = (session_id, turn_idx)
        verdict = self.gate.offer(req)
        if verdict == "admit":
            self._submit(req)
        elif verdict == "refuse":
            # The prompt outgrew every bucket: the conversation is over.
            self._turn_of.pop(req.request_id, None)
            self._abort_session(session_id)
        # "park": the gate holds it until a terminal releases quota.

    def _submit(self, req: SessionRequest) -> None:
        prefer = self.sessions.pool_for(req.session_id)
        self.runtime.submit(req, prefer=prefer)

    def _abort_session(self, session_id: int) -> None:
        self.sessions_aborted += 1
        leaked = self.sessions.end_session(session_id)
        if leaked:
            self.prefix_leaks[session_id] = leaked

    def _on_terminal(self, req) -> None:
        for released in self.gate.release(req):
            self._submit(released)
        info = self._turn_of.pop(req.request_id, None)
        if info is None:
            return
        session_id, turn_idx = info
        spec = self._specs[session_id]
        completed = req.finish_s is not None and req.generated >= req.output_len
        if not completed:
            self._abort_session(session_id)
            return
        self._history[session_id] = req.prompt_len + req.output_len
        if turn_idx + 1 < len(spec.turns):
            think = spec.turns[turn_idx + 1].think_s
            self.loop.schedule_after(
                think,
                lambda: self._begin_turn(session_id, turn_idx + 1),
            )
        else:
            self.sessions_completed += 1
            leaked = self.sessions.end_session(session_id)
            if leaked:
                self.prefix_leaks[session_id] = leaked

    # ---- entry point -----------------------------------------------------------------

    def run(self, specs: Sequence[SessionSpec]) -> RuntimeStats:
        if not specs:
            raise ValueError("empty session workload")
        if len({s.session_id for s in specs}) != len(specs):
            raise ValueError("session ids must be unique")
        for spec in sorted(specs, key=lambda s: (s.start_s, s.session_id)):
            self._specs[spec.session_id] = spec
            self.loop.schedule_at(
                spec.start_s,
                (lambda sid: lambda: self._begin_turn(sid, 0))(
                    spec.session_id
                ),
            )
        self.loop.run()
        # Backstop for sessions interrupted mid-conversation (parked
        # forever, aborted by faults): free their prefixes and audit.
        for session_id, leaked in self.sessions.teardown().items():
            self.prefix_leaks.setdefault(session_id, leaked)
        return self.runtime.finalize()


# ---------------------------------------------------------------------------
# scenario runner + report
# ---------------------------------------------------------------------------


def build_server(cfg: ServerConfig, loop=None, subscriber=None) -> StreamingServer:
    serving_cfg = ServingConfig(
        model=cfg.model,
        framework=cfg.framework,
        gpu=cfg.gpu,
        max_batch=cfg.max_batch,
        policy=cfg.policy,
        chunked_prefill=True,
        chunk_tokens=cfg.chunk_tokens,
        preemption=True,
        kv_cap_tokens=cfg.kv_cap_tokens,
    )
    sim = ServingSimulator(serving_cfg)
    pools = [sim.build_pool(name=f"gpu{i}") for i in range(cfg.replicas)]
    plan = (
        builtin_fault_plans()[cfg.fault_plan]
        if cfg.fault_plan is not None
        else None
    )
    return StreamingServer(
        pools,
        get_recovery_policy(cfg.recovery),
        server_policy=SERVER_POLICIES[cfg.server_policy],
        reuse_prefix=cfg.reuse_prefix,
        policy=cfg.policy,
        prefill_mode="chunked",
        chunk_tokens=cfg.chunk_tokens,
        preemption=True,
        fault_plan=plan,
        loop=loop,
        subscriber=subscriber,
    )


def run_server(
    cfg: ServerConfig, loop=None
) -> Tuple[StreamingServer, RuntimeStats]:
    server = build_server(cfg, loop=loop)
    stats = server.run(cfg.workload())
    return server, stats


def _percentile(values: List[float], pct: float) -> float:
    """Nearest-rank percentile (the serving layer's convention)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


def _ttfts(stats: RuntimeStats) -> List[float]:
    return [
        r.ttft_s
        for r in stats.completed
        if r.ttft_s is not None
    ]


def server_report(cfg: ServerConfig) -> Dict:
    """Deterministic JSON-ready summary (``repro server --json``)."""
    server, stats = run_server(cfg)
    ttfts = _ttfts(stats)
    stream_digest = hashlib.sha256(
        repr([e.key() for e in server.stream.events]).encode()
    ).hexdigest()
    return {
        "scenario": {
            "model": cfg.model,
            "framework": cfg.framework,
            "gpu": cfg.gpu,
            "replicas": cfg.replicas,
            "sessions": cfg.sessions,
            "turns": cfg.turns,
            "arrival_rate": cfg.arrival_rate,
            "seed": cfg.seed,
            "server_policy": cfg.server_policy,
            "recovery": cfg.recovery,
            "fault_plan": cfg.fault_plan,
            "reuse_prefix": cfg.reuse_prefix,
        },
        "sessions": {
            "submitted": len(server._specs),
            "completed": server.sessions_completed,
            "aborted": server.sessions_aborted,
            "turns_submitted": len(server.requests),
            "turns_completed": len(stats.completed),
        },
        "admission": {
            "parked": server.gate.parked_total,
            "refused": len(server.gate.refused),
            "buckets": {
                str(idx): count
                for idx, count in sorted(server.gate.bucket_counts.items())
            },
        },
        "prefix_cache": {
            "hits": server.sessions.hits,
            "misses": server.sessions.misses,
            "invalidations": server.sessions.invalidations,
            "retained": server.sessions.retained,
            "prefill_tokens": stats.prefill_tokens,
            "cached_prefill_tokens": stats.cached_prefill_tokens,
            "leaked_blocks": sum(
                len(server.prefix_leaks[sid])
                for sid in sorted(server.prefix_leaks)
            ),
        },
        "stream": {
            "events": len(server.stream.events),
            "flushes": server.stream.flushes,
            "sha256": stream_digest,
        },
        "latency": {
            "mean_ttft_s": round(
                sum(ttfts) / len(ttfts), 9
            )
            if ttfts
            else 0.0,
            "p50_ttft_s": round(_percentile(ttfts, 50.0), 9),
            "p99_ttft_s": round(_percentile(ttfts, 99.0), 9),
        },
        "runtime": {
            "makespan_s": round(stats.makespan_s, 9),
            "preemptions": stats.preemptions,
            "retries": stats.retries,
            "faults": stats.faults,
            "goodput_tokens_per_s": round(stats.goodput_tokens_per_s, 6),
            "availability": round(stats.availability, 6),
        },
    }


def server_report_json(cfg: ServerConfig) -> str:
    """Byte-stable serialisation: sorted keys, no whitespace drift."""
    payload = {"schema": "repro-server/v1", "report": server_report(cfg)}
    return json.dumps(payload, indent=2, sort_keys=True)
