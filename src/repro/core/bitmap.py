"""Bitmap primitives underpinning the TCA-BME sparse format.

A *BitmapTile* is an 8x8 block of a weight matrix whose sparsity pattern is
encoded in a single 64-bit integer (the paper exploits CUDA's native
``uint64_t`` for this).  Bit ``r * 8 + c`` is set iff element ``(r, c)`` of
the tile is non-zero, i.e. bits are laid out row-major within the tile.

This row-major bit order is not arbitrary: it makes the per-lane decode of
the ``mma.m16n8k16`` A-fragment a pure bit-pair lookup.  Lane ``l`` of a
warp owns elements ``(l // 4, 2 * (l % 4))`` and ``(l // 4, 2 * (l % 4) + 1)``
of each 8x8 quadrant, which are exactly bits ``2 * l`` and ``2 * l + 1`` of
the bitmap (see :mod:`repro.gpu.tensor_core` for the fragment layout and
:mod:`repro.core.smbd` for the decoder built on top of these primitives).

All functions accept either Python ints or numpy ``uint64`` arrays; array
inputs are processed vectorised.
"""

from __future__ import annotations

import sys
from typing import Union

import numpy as np

__all__ = [
    "BITMAP_TILE_BITS",
    "popcount64",
    "masked_popcount",
    "lane_bit_indices",
    "bitmap_from_block",
    "block_mask_from_bitmap",
    "expand_bitmap_rows",
    "pack_bitmap_rows",
]

#: uint64 <-> 8-byte views assume little-endian layout (bit ``8j + b`` of
#: the bitmap lives in bit ``b`` of byte ``j``); big-endian hosts fall
#: back to the shift-based paths.
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Number of bits in one BitmapTile bitmap (an 8x8 tile).
BITMAP_TILE_BITS = 64

_UINT64 = np.uint64

# Magic constants of the classic SWAR popcount (Hacker's Delight 5-2),
# expressed as uint64 so the numpy path never up-casts to Python ints.
_M1 = _UINT64(0x5555555555555555)
_M2 = _UINT64(0x3333333333333333)
_M4 = _UINT64(0x0F0F0F0F0F0F0F0F)
_H01 = _UINT64(0x0101010101010101)
_SHIFT_56 = _UINT64(56)

IntOrArray = Union[int, np.integer, np.ndarray]


def popcount64(bits: IntOrArray) -> IntOrArray:
    """Count set bits of 64-bit value(s) — the CUDA ``__popcll`` intrinsic.

    Accepts a Python int (must fit in 64 bits), a numpy scalar, or a numpy
    array of ``uint64``; returns the same kind.  The SpInfer kernel uses this
    to locate each BitmapTile's slice of the compressed ``Values`` array
    without storing explicit offsets.
    """
    if isinstance(bits, (int, np.integer)):
        value = int(bits)
        if value < 0 or value >= (1 << 64):
            raise ValueError(f"popcount64 expects a 64-bit value, got {value!r}")
        return value.bit_count()
    arr = np.asarray(bits, dtype=_UINT64)
    x = arr - ((arr >> _UINT64(1)) & _M1)
    x = (x & _M2) + ((x >> _UINT64(2)) & _M2)
    x = (x + (x >> _UINT64(4))) & _M4
    return ((x * _H01) >> _SHIFT_56).astype(np.int64)


def masked_popcount(bitmap: IntOrArray, lane: int) -> IntOrArray:
    """Count set bits *preceding* a lane's first bit (paper Algorithm 2).

    Lane ``l`` of the warp owns bits ``2l`` (value a0) and ``2l + 1``
    (value a1) of the 64-bit bitmap.  The number of ones strictly below bit
    ``2l`` is that lane's offset into the BitmapTile's compressed value
    slice.  ``lane`` must be in ``[0, 32)``.
    """
    if not 0 <= lane < 32:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    offset = lane * 2
    mask = (1 << offset) - 1
    if isinstance(bitmap, (int, np.integer)):
        return popcount64(int(bitmap) & mask)
    arr = np.asarray(bitmap, dtype=_UINT64)
    return popcount64(arr & _UINT64(mask))


def lane_bit_indices(lane: int) -> tuple[int, int]:
    """Bit positions (phase I, phase II) examined by a warp lane.

    Phase I decodes value ``a0`` from bit ``2 * lane``; phase II decodes
    ``a1`` from bit ``2 * lane + 1`` reusing phase I's MaskedPopCount result.
    """
    if not 0 <= lane < 32:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    return 2 * lane, 2 * lane + 1


def bitmap_from_block(block: np.ndarray) -> int:
    """Encode an 8x8 block's non-zero pattern into a 64-bit bitmap.

    ``block`` may be any dtype; an element is "non-zero" iff ``block != 0``.
    Bit ``r * 8 + c`` corresponds to ``block[r, c]``.
    """
    block = np.asarray(block)
    if block.shape != (8, 8):
        raise ValueError(f"BitmapTile blocks are 8x8, got shape {block.shape}")
    flat = (block.reshape(-1) != 0).astype(np.uint64)
    weights = np.left_shift(np.uint64(1), np.arange(64, dtype=np.uint64))
    return int((flat * weights).sum(dtype=np.uint64))


def block_mask_from_bitmap(bitmap: IntOrArray) -> np.ndarray:
    """Decode bitmap(s) back to boolean 8x8 mask(s).

    A scalar yields shape ``(8, 8)``; an array of shape ``S`` yields
    ``S + (8, 8)``.
    """
    arr = np.asarray(bitmap, dtype=_UINT64)
    shifts = np.arange(64, dtype=np.uint64)
    bits = (arr[..., None] >> shifts) & _UINT64(1)
    return bits.astype(bool).reshape(arr.shape + (8, 8))


def expand_bitmap_rows(bitmaps: np.ndarray) -> np.ndarray:
    """Expand an array of bitmaps into a flat per-bit boolean matrix.

    Given ``n`` bitmaps returns an ``(n, 64)`` boolean array whose column
    order matches the compressed value order within each BitmapTile (bit
    index order, i.e. row-major within the 8x8 tile).  This is the
    vectorised workhorse used by the whole-matrix encoder/decoder; on
    little-endian hosts it is a single ``np.unpackbits`` over the raw
    bitmap bytes.
    """
    arr = np.asarray(bitmaps, dtype=_UINT64).reshape(-1)
    if _LITTLE_ENDIAN:
        as_bytes = np.ascontiguousarray(arr).view(np.uint8).reshape(-1, 8)
        return np.unpackbits(as_bytes, axis=1, bitorder="little").astype(bool)
    shifts = np.arange(64, dtype=np.uint64)
    return ((arr[:, None] >> shifts) & _UINT64(1)).astype(bool)


def pack_bitmap_rows(mask: np.ndarray) -> np.ndarray:
    """Pack an ``(n, 64)`` boolean matrix into ``n`` uint64 bitmaps.

    Exact inverse of :func:`expand_bitmap_rows`; on little-endian hosts
    a single ``np.packbits`` replaces the 64-lane shift-multiply-sum.
    """
    mask = np.asarray(mask)
    if mask.ndim != 2 or mask.shape[1] != BITMAP_TILE_BITS:
        raise ValueError(
            f"expected an (n, {BITMAP_TILE_BITS}) mask, got shape {mask.shape}"
        )
    mask = mask != 0
    if _LITTLE_ENDIAN:
        packed = np.packbits(mask, axis=1, bitorder="little")
        return np.ascontiguousarray(packed).view(_UINT64).reshape(-1)
    weights = np.left_shift(
        _UINT64(1), np.arange(BITMAP_TILE_BITS, dtype=_UINT64)
    )
    return (mask.astype(_UINT64) * weights).sum(axis=1, dtype=_UINT64)
