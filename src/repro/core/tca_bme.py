"""Tensor-Core-Aware Bitmap Encoding (TCA-BME) — paper Section 4.2.

TCA-BME stores a sparse FP16 weight matrix in three arrays:

``GTileOffset`` (``uint32``, ``NGT + 1`` entries)
    Start offset of each GroupTile's slice of the ``Values`` array, in
    elements.  Enables direct thread-block addressing of its GroupTile.

``Values`` (``float16``, ``NNZ`` entries)
    All non-zero elements, serialised in nested storage order:
    GroupTiles row-major over the matrix, TCTiles column-major within a
    GroupTile, BitmapTiles column-major (Ra-register order) within a
    TCTile, and bit order (row-major) within each 8x8 BitmapTile.

``Bitmap`` (``uint64``, ``NBT`` entries)
    One 64-bit occupancy bitmap per BitmapTile, in the same storage order.

Total storage (paper Eq. 9)::

    Stor = 4B * (NGT + 1) + 8B * NBT + 2B * NNZ

The real kernel additionally pads each GroupTile's value slice to an
8-byte boundary so ``LDGSTS.128`` vectorised loads stay aligned (Section
4.3.2); :meth:`TCABMEMatrix.storage_bytes_aligned` accounts for that.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .bitmap import expand_bitmap_rows, pack_bitmap_rows
from .tiles import DEFAULT_TILE_CONFIG, TileConfig

__all__ = ["TCABMEMatrix", "encode", "tca_bme_storage_bytes"]

#: Elements per 8-byte LDGSTS alignment boundary (FP16 values).
_ALIGN_ELEMS = 4


def _storage_order_view(padded: np.ndarray, config: TileConfig) -> np.ndarray:
    """Rearrange a padded matrix into ``(NBT, 64)`` storage-order rows.

    Row ``i`` holds the 64 elements of the ``i``-th BitmapTile in storage
    order; within a row, elements appear in bit order.  The transform is a
    pure reshape/transpose, so it is its own inverse (see
    :func:`_storage_order_inverse`).
    """
    pm, pk = padded.shape
    c = config
    gr, gc = pm // c.gt_h, pk // c.gt_w
    tr, tc = c.gt_h // c.tt_h, c.gt_w // c.tt_w
    br, bc = c.tt_h // c.bt_h, c.tt_w // c.bt_w
    # (GR, gt_h, GC, gt_w) with gt_h = TR*br*8, gt_w = TC*bc*8
    x = padded.reshape(gr, tr, br, c.bt_h, gc, tc, bc, c.bt_w)
    # target order: GR, GC, TC, TR, bc, br, r, c
    x = x.transpose(0, 4, 5, 1, 6, 2, 3, 7)
    return x.reshape(-1, c.bt_h * c.bt_w)


def _storage_order_inverse(
    rows: np.ndarray, pm: int, pk: int, config: TileConfig
) -> np.ndarray:
    """Inverse of :func:`_storage_order_view`: rows back to a padded matrix."""
    c = config
    gr, gc = pm // c.gt_h, pk // c.gt_w
    tr, tc = c.gt_h // c.tt_h, c.gt_w // c.tt_w
    br, bc = c.tt_h // c.bt_h, c.tt_w // c.bt_w
    x = rows.reshape(gr, gc, tc, tr, bc, br, c.bt_h, c.bt_w)
    x = x.transpose(0, 3, 5, 6, 1, 2, 4, 7)
    return x.reshape(pm, pk)


def tca_bme_storage_bytes(
    m: int, k: int, nnz: int, config: TileConfig = DEFAULT_TILE_CONFIG
) -> int:
    """Analytic storage size of TCA-BME per paper Eq. 9 (no padding)."""
    ngt = config.num_group_tiles(m, k)
    nbt = config.num_bitmap_tiles(m, k)
    return 4 * (ngt + 1) + 8 * nbt + 2 * nnz


@dataclass
class TCABMEMatrix:
    """A sparse ``M x K`` FP16 matrix in TCA-BME form.

    Construct via :func:`encode` (or :meth:`from_dense`); the raw arrays
    are exposed for the kernels and the simulator.
    """

    shape: Tuple[int, int]
    gtile_offsets: np.ndarray  # uint32, (NGT + 1,)
    values: np.ndarray  # float16, (NNZ,)
    bitmaps: np.ndarray  # uint64, (NBT,)
    config: TileConfig = field(default_factory=lambda: DEFAULT_TILE_CONFIG)
    # ---- integrity seal (None until seal(); unsealed == pre-seal) -----
    #: Per-GroupTile content digest (uint32, NGT entries): CRC over the
    #: GroupTile's bitmap and value slices.  A corrupted tile is caught
    #: at decode time by :meth:`corrupted_groups` before any FLOP is
    #: spent on it.
    tile_digests: Optional[np.ndarray] = None
    #: ABFT checksum row ``e^T W`` (float64, K entries).  For any input
    #: ``X``, a correct SpMM output satisfies
    #: ``Y.sum(axis=0) == checksum_row @ X`` up to FP16 rounding — the
    #: O(KN + MN) post-multiply check the kernels run under verify mode.
    checksum_row: Optional[np.ndarray] = None

    # ---- constructors ----------------------------------------------------------

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, config: TileConfig = DEFAULT_TILE_CONFIG
    ) -> "TCABMEMatrix":
        return encode(dense, config)

    # ---- basic properties ------------------------------------------------------

    @property
    def m(self) -> int:
        return self.shape[0]

    @property
    def k(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def num_group_tiles(self) -> int:
        return int(self.gtile_offsets.size - 1)

    @property
    def num_bitmap_tiles(self) -> int:
        return int(self.bitmaps.size)

    @property
    def sparsity(self) -> float:
        """Fraction of zero elements of the *logical* (unpadded) matrix."""
        total = self.m * self.k
        return 1.0 - self.nnz / total if total else 0.0

    # ---- storage accounting ------------------------------------------------------

    def storage_bytes(self) -> int:
        """Exact storage per paper Eq. 9 (offsets + bitmaps + values)."""
        return int(
            4 * self.gtile_offsets.size + 8 * self.bitmaps.size + 2 * self.values.size
        )

    def storage_bytes_aligned(self) -> int:
        """Storage with each GroupTile value slice padded to 8 bytes.

        This is what the kernel actually transfers: padding keeps every
        GroupTile's ``LDGSTS.128`` base address aligned (Section 4.3.2).
        """
        nnz_per_gt = np.diff(self.gtile_offsets.astype(np.int64))
        padded = (nnz_per_gt + _ALIGN_ELEMS - 1) // _ALIGN_ELEMS * _ALIGN_ELEMS
        return int(
            4 * self.gtile_offsets.size + 8 * self.bitmaps.size + 2 * padded.sum()
        )

    def compression_ratio(self) -> float:
        """CR = dense FP16 bytes / TCA-BME bytes (paper Eq. 1)."""
        return (2.0 * self.m * self.k) / self.storage_bytes()

    # ---- per-GroupTile access (used by the kernels) ------------------------------

    def group_values(self, g: int) -> np.ndarray:
        """The ``g``-th GroupTile's slice of the Values array."""
        lo = int(self.gtile_offsets[g])
        hi = int(self.gtile_offsets[g + 1])
        return self.values[lo:hi]

    def group_bitmaps(self, g: int) -> np.ndarray:
        """The ``g``-th GroupTile's bitmaps, in storage order."""
        per = self.config.bts_per_gt
        return self.bitmaps[g * per : (g + 1) * per]

    def group_nnz(self) -> np.ndarray:
        """Non-zeros per GroupTile (int64 array of length NGT)."""
        return np.diff(self.gtile_offsets.astype(np.int64))

    # ---- integrity seal (ABFT checksums + per-tile digests) ----------------------

    @property
    def sealed(self) -> bool:
        return self.tile_digests is not None

    def _group_digest(self, g: int) -> int:
        crc = zlib.crc32(self.group_bitmaps(g).tobytes())
        return zlib.crc32(self.group_values(g).tobytes(), crc) & 0xFFFFFFFF

    def seal(self) -> "TCABMEMatrix":
        """Attach integrity metadata: one CRC digest per GroupTile plus
        the ABFT checksum row ``e^T W``.  Sealing is opt-in and changes
        nothing else — an unsealed matrix is byte-identical to one built
        before the integrity layer existed.
        """
        self.tile_digests = np.array(
            [self._group_digest(g) for g in range(self.num_group_tiles)],
            dtype=np.uint32,
        )
        self.checksum_row = self.to_dense().astype(np.float64).sum(axis=0)
        return self

    def corrupted_groups(self) -> List[int]:
        """GroupTiles whose content no longer matches the seal, sorted."""
        if not self.sealed:
            raise ValueError("matrix is not sealed; call seal() first")
        return [
            g
            for g in range(self.num_group_tiles)
            if self._group_digest(g) != int(self.tile_digests[g])
        ]

    def verify_digests(self) -> None:
        """Raise ``ValueError`` naming the corrupted GroupTiles, if any."""
        bad = self.corrupted_groups()
        if bad:
            raise ValueError(
                f"TCA-BME digest mismatch in GroupTile(s) {bad}: "
                "stored content does not match the seal"
            )

    def corrupt_group(self, g: int) -> None:
        """Flip one payload bit inside GroupTile ``g`` (fault injection).

        Models a silent bit flip in device memory: the structure stays
        valid, the numbers are wrong.  Requires a non-empty GroupTile.
        """
        lo = int(self.gtile_offsets[g])
        hi = int(self.gtile_offsets[g + 1])
        if hi <= lo:
            raise ValueError(f"GroupTile {g} holds no values to corrupt")
        self.values[lo : lo + 1].view(np.uint16)[0] ^= 1 << 9

    # ---- reconstruction ------------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Decode back to a dense ``float16`` matrix (exact round trip)."""
        c = self.config
        pm, pk = c.padded_shape(self.m, self.k)
        mask = expand_bitmap_rows(self.bitmaps)
        rows = np.zeros(mask.shape, dtype=np.float16)
        rows[mask] = self.values
        padded = _storage_order_inverse(rows, pm, pk, c)
        return np.ascontiguousarray(padded[: self.m, : self.k])

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        c = self.config
        if self.gtile_offsets[0] != 0:
            raise ValueError("GTileOffset must start at 0")
        if int(self.gtile_offsets[-1]) != self.values.size:
            raise ValueError("last GTileOffset must equal NNZ")
        if np.any(np.diff(self.gtile_offsets.astype(np.int64)) < 0):
            raise ValueError("GTileOffset must be non-decreasing")
        if self.bitmaps.size != c.num_bitmap_tiles(self.m, self.k):
            raise ValueError("bitmap count does not match matrix geometry")
        from .bitmap import popcount64

        total_bits = int(np.sum(popcount64(self.bitmaps)))
        if total_bits != self.values.size:
            raise ValueError(
                f"bitmap population {total_bits} != value count {self.values.size}"
            )


def encode(
    dense: np.ndarray, config: TileConfig = DEFAULT_TILE_CONFIG
) -> TCABMEMatrix:
    """Encode a dense matrix into TCA-BME form.

    The matrix is zero-padded up to whole GroupTiles; padding is invisible
    to :meth:`TCABMEMatrix.to_dense` and contributes no values (only bitmap
    and offset entries, exactly as on the GPU).
    """
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {dense.shape}")
    m, k = dense.shape
    if m == 0 or k == 0:
        raise ValueError("matrix must be non-empty")
    dense16 = dense.astype(np.float16, copy=False)

    pm, pk = config.padded_shape(m, k)
    if (pm, pk) != (m, k):
        padded = np.zeros((pm, pk), dtype=np.float16)
        padded[:m, :k] = dense16
    else:
        padded = dense16

    rows = _storage_order_view(padded, config)  # (NBT, 64)
    mask = rows != 0

    bitmaps = pack_bitmap_rows(mask)

    values = rows[mask].astype(np.float16)

    per_gt = config.bts_per_gt
    nnz_per_gt = mask.reshape(-1, per_gt * config.bt_h * config.bt_w).sum(axis=1)
    offsets = np.concatenate(([0], np.cumsum(nnz_per_gt))).astype(np.uint32)

    return TCABMEMatrix(
        shape=(m, k),
        gtile_offsets=offsets,
        values=values,
        bitmaps=bitmaps,
        config=config,
    )
