"""Quantized TCA-BME — the paper's quantization-composability claim.

Section 2.3 argues SpInfer "complements these quantization techniques":
the bitmap index is orthogonal to how the surviving values are stored,
so the FP16 ``Values`` array can be quantized without touching the
format's indexing machinery.  This module implements that extension:
group-wise symmetric quantization of the compressed value stream to
INT8 or INT4 (two nibbles per byte), with FP16 scales per group.

Storage ::

    Stor = 4B * (NGT + 1) + 8B * NBT            # unchanged indexing
         + ceil(bits / 8 * NNZ)                 # quantized values
         + 2B * ceil(NNZ / group_size)          # per-group scales

At 60 % sparsity the INT8 variant pushes the compression ratio from
~2.16x to ~3.5x; decoding adds one multiply per value on top of SMBD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .tca_bme import TCABMEMatrix, encode
from .tiles import DEFAULT_TILE_CONFIG, TileConfig

__all__ = ["QuantizedTCABME", "quantize_values", "dequantize_values"]

_SUPPORTED_BITS = (4, 8)


def _qmax(bits: int) -> int:
    return (1 << (bits - 1)) - 1  # symmetric range, e.g. 127 for INT8


def quantize_values(
    values: np.ndarray, bits: int = 8, group_size: int = 128
) -> Tuple[np.ndarray, np.ndarray]:
    """Group-wise symmetric quantization of a value stream.

    Returns ``(codes, scales)``: ``codes`` is int8 (INT4 codes also live
    in an int8 array, range [-7, 7]); ``scales`` is float16, one per
    group of ``group_size`` consecutive values.
    """
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    values = np.asarray(values, dtype=np.float32).reshape(-1)
    n = values.size
    groups = -(-n // group_size) if n else 0
    padded = np.zeros(groups * group_size, dtype=np.float32)
    padded[:n] = values

    grouped = padded.reshape(groups, group_size) if groups else padded.reshape(0, 1)
    absmax = np.abs(grouped).max(axis=1)
    qmax = _qmax(bits)
    scales = np.where(absmax > 0, absmax / qmax, 1.0).astype(np.float16)
    codes = np.clip(
        np.rint(grouped / scales.astype(np.float32)[:, None]), -qmax, qmax
    ).astype(np.int8)
    return codes.reshape(-1)[:n], scales


def dequantize_values(
    codes: np.ndarray, scales: np.ndarray, group_size: int = 128
) -> np.ndarray:
    """Inverse of :func:`quantize_values`; returns float16."""
    codes = np.asarray(codes, dtype=np.int8).reshape(-1)
    scales = np.asarray(scales, dtype=np.float16)
    n = codes.size
    if n == 0:
        return np.zeros(0, dtype=np.float16)
    expected_groups = -(-n // group_size)
    if scales.size != expected_groups:
        raise ValueError(
            f"expected {expected_groups} scales for {n} codes, got {scales.size}"
        )
    group_ids = np.arange(n) // group_size
    out = codes.astype(np.float32) * scales.astype(np.float32)[group_ids]
    return out.astype(np.float16)


@dataclass
class QuantizedTCABME:
    """TCA-BME with a quantized value stream (indexing untouched)."""

    inner: TCABMEMatrix
    codes: np.ndarray  # int8 codes, one per non-zero
    scales: np.ndarray  # float16 per group
    bits: int
    group_size: int

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        bits: int = 8,
        group_size: int = 128,
        config: TileConfig = DEFAULT_TILE_CONFIG,
    ) -> "QuantizedTCABME":
        inner = encode(dense, config)
        codes, scales = quantize_values(inner.values, bits, group_size)
        return cls(
            inner=inner, codes=codes, scales=scales, bits=bits,
            group_size=group_size,
        )

    # ---- reconstruction ---------------------------------------------------------

    def dequantized_values(self) -> np.ndarray:
        return dequantize_values(self.codes, self.scales, self.group_size)

    def to_dense(self) -> np.ndarray:
        """Approximate reconstruction (exact sparsity pattern, quantized
        values)."""
        approx = TCABMEMatrix(
            shape=self.inner.shape,
            gtile_offsets=self.inner.gtile_offsets,
            values=self.dequantized_values(),
            bitmaps=self.inner.bitmaps,
            config=self.inner.config,
        )
        return approx.to_dense()

    def quantization_error(self) -> float:
        """Relative RMS error of the value stream (0 for empty)."""
        ref = self.inner.values.astype(np.float32)
        if ref.size == 0:
            return 0.0
        err = self.dequantized_values().astype(np.float32) - ref
        denom = float(np.sqrt(np.mean(ref**2)))
        return float(np.sqrt(np.mean(err**2))) / denom if denom else 0.0

    # ---- storage ---------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.inner.nnz

    def storage_bytes(self) -> int:
        indexing = (
            4 * self.inner.gtile_offsets.size + 8 * self.inner.bitmaps.size
        )
        value_bytes = -(-self.bits * self.nnz // 8)
        scale_bytes = 2 * self.scales.size
        return indexing + value_bytes + scale_bytes

    def compression_ratio(self) -> float:
        m, k = self.inner.shape
        return (2.0 * m * k) / self.storage_bytes()

    # ---- compute -------------------------------------------------------------------

    def spmm(self, x: np.ndarray) -> np.ndarray:
        """Dequantize-on-decode SpMM: the SMBD path with one extra
        multiply per value, as the composed SpInfer+quant kernel would."""
        from ..kernels.spinfer import SpInferKernel

        approx = TCABMEMatrix(
            shape=self.inner.shape,
            gtile_offsets=self.inner.gtile_offsets,
            values=self.dequantized_values(),
            bitmaps=self.inner.bitmaps,
            config=self.inner.config,
        )
        return SpInferKernel().run_encoded(approx, x)
