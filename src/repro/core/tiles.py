"""Tile geometry for the Tensor-Core-Aware Bitmap Encoding.

TCA-BME partitions the ``M x K`` weight matrix into three nested tiles,
each aligned to one level of the GPU execution hierarchy (paper Section
4.2.1, Figure 6):

``BitmapTile`` (8 x 8)
    The minimum Tensor-Core operand granule.  One ``uint64`` bitmap per
    tile.

``TCTile`` (16 x 16 = 2 x 2 BitmapTiles, column-major)
    Matches the ``m x k`` of the FP16 ``mma.m16n8k16`` instruction.  The
    2x2 BitmapTiles are stored column-major so they align with the four
    ``Ra`` registers of the mma fragment: top-left -> Ra0, bottom-left ->
    Ra1, top-right -> Ra2, bottom-right -> Ra3.

``GroupTile`` (``GT_H x GT_W``, default 64 x 64)
    The thread-block work granule.  TCTiles within a GroupTile are stored
    column-major; GroupTiles themselves are stored row-major over the
    matrix.

This module is pure geometry: index enumeration, ordering, and padding
logic shared by the encoder, the SMBD decoder and the kernel simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["TileConfig", "DEFAULT_TILE_CONFIG"]


@dataclass(frozen=True)
class TileConfig:
    """Dimensions of the three TCA-BME tile levels.

    The BitmapTile is fixed at 8x8 by the 64-bit bitmap; the TCTile at
    16x16 by ``mma.m16n8k16``.  GroupTile dimensions are tunable kernel
    parameters (they trade shared-memory footprint against K-dimension
    iteration count) and must be multiples of the TCTile dimensions.
    """

    bt_h: int = 8
    bt_w: int = 8
    tt_h: int = 16
    tt_w: int = 16
    gt_h: int = 64
    gt_w: int = 64

    def __post_init__(self) -> None:
        # Any 64-cell BitmapTile fits one uint64 bitmap; NVIDIA Tensor
        # Cores use 8x8, other matrix units (paper Section 6) may prefer
        # different aspect ratios (e.g. 4x16 for row-oriented AMX tiles).
        if self.bt_h * self.bt_w != 64:
            raise ValueError(
                "BitmapTile must contain exactly 64 cells (one uint64 bitmap); "
                f"got {self.bt_h}x{self.bt_w}"
            )
        if self.bt_h <= 0 or self.bt_w <= 0:
            raise ValueError("BitmapTile dims must be positive")
        if self.tt_h % self.bt_h or self.tt_w % self.bt_w:
            raise ValueError("TCTile dims must be multiples of BitmapTile dims")
        if self.gt_h % self.tt_h or self.gt_w % self.tt_w:
            raise ValueError("GroupTile dims must be multiples of TCTile dims")
        if self.gt_h <= 0 or self.gt_w <= 0:
            raise ValueError("GroupTile dims must be positive")

    # ---- per-level tile counts -------------------------------------------------

    @property
    def bts_per_tt(self) -> int:
        """BitmapTiles per TCTile (2 x 2 = 4 for the standard config)."""
        return (self.tt_h // self.bt_h) * (self.tt_w // self.bt_w)

    @property
    def tts_per_gt(self) -> int:
        """TCTiles per GroupTile."""
        return (self.gt_h // self.tt_h) * (self.gt_w // self.tt_w)

    @property
    def bts_per_gt(self) -> int:
        """BitmapTiles per GroupTile."""
        return self.bts_per_tt * self.tts_per_gt

    # ---- padded matrix geometry ------------------------------------------------

    def padded_shape(self, m: int, k: int) -> Tuple[int, int]:
        """Matrix shape after zero-padding up to whole GroupTiles."""
        pad_m = -m % self.gt_h
        pad_k = -k % self.gt_w
        return m + pad_m, k + pad_k

    def num_group_tiles(self, m: int, k: int) -> int:
        pm, pk = self.padded_shape(m, k)
        return (pm // self.gt_h) * (pk // self.gt_w)

    def num_bitmap_tiles(self, m: int, k: int) -> int:
        return self.num_group_tiles(m, k) * self.bts_per_gt

    def group_grid(self, m: int, k: int) -> Tuple[int, int]:
        """GroupTile grid shape ``(rows, cols)`` over the padded matrix."""
        pm, pk = self.padded_shape(m, k)
        return pm // self.gt_h, pk // self.gt_w

    # ---- ordering enumeration ---------------------------------------------------
    #
    # The enumerators below yield (row, col) element offsets of tile origins
    # in *storage order*, which is what the encoder serialises and what the
    # decoder must walk to reconstruct offsets via PopCount accumulation.

    def iter_group_tiles(self, m: int, k: int) -> Iterator[Tuple[int, int]]:
        """Yield GroupTile origins in storage (row-major) order."""
        rows, cols = self.group_grid(m, k)
        for gr in range(rows):
            for gc in range(cols):
                yield gr * self.gt_h, gc * self.gt_w

    def iter_tctiles_in_group(self) -> Iterator[Tuple[int, int]]:
        """Yield TCTile origins within a GroupTile in storage (column-major) order."""
        rows = self.gt_h // self.tt_h
        cols = self.gt_w // self.tt_w
        for tc in range(cols):
            for tr in range(rows):
                yield tr * self.tt_h, tc * self.tt_w

    def iter_bitmaptiles_in_tctile(self) -> Iterator[Tuple[int, int]]:
        """Yield BitmapTile origins within a TCTile in Ra-register order.

        Column-major: (0,0) -> Ra0, (8,0) -> Ra1, (0,8) -> Ra2, (8,8) -> Ra3.
        """
        rows = self.tt_h // self.bt_h
        cols = self.tt_w // self.bt_w
        for bc in range(cols):
            for br in range(rows):
                yield br * self.bt_h, bc * self.bt_w

    def iter_bitmaptiles(self, m: int, k: int) -> Iterator[Tuple[int, int]]:
        """Yield every BitmapTile origin of the padded matrix in storage order."""
        for g_r, g_c in self.iter_group_tiles(m, k):
            for t_r, t_c in self.iter_tctiles_in_group():
                for b_r, b_c in self.iter_bitmaptiles_in_tctile():
                    yield g_r + t_r + b_r, g_c + t_c + b_c


#: The configuration used throughout the paper's evaluation.
DEFAULT_TILE_CONFIG = TileConfig()
