"""Register-fragment layouts of the FP16 ``mma.m16n8k16`` instruction.

The SpInfer kernel computes with the PTX-level instruction ::

    mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32
        {d0,d1,d2,d3}, {a0,a1,a2,a3}, {b0,b1}, {c0,c1,c2,c3}

Each of the 32 warp lanes holds a fixed slice of the A (16x16, row-major),
B (16x8, column-major) and C/D (16x8) operands.  SMBD's correctness hinges
on this mapping: the four ``Ra`` registers correspond one-to-one to the
four BitmapTiles of a TCTile (column-major), and within a BitmapTile lane
``l`` owns bits ``2l`` and ``2l + 1`` of the 64-bit bitmap.

This module gives the exact lane <-> element maps (as published in the PTX
ISA) plus scatter/gather helpers used by both the functional SMBD decoder
and the numeric Tensor-Core model in :mod:`repro.gpu.tensor_core`.

Conventions: ``lane`` in ``[0, 32)``; ``groupID = lane // 4``;
``threadID = lane % 4``.  Registers hold ``.f16x2`` pairs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "WARP_SIZE",
    "MMA_M",
    "MMA_N",
    "MMA_K",
    "a_fragment_index",
    "b_fragment_index",
    "cd_fragment_index",
    "gather_a_fragments",
    "scatter_a_fragments",
    "gather_b_fragments",
    "gather_cd_fragments",
    "scatter_cd_fragments",
    "quadrant_origin",
]

WARP_SIZE = 32
MMA_M, MMA_N, MMA_K = 16, 8, 16

#: BitmapTile quadrant origins within a TCTile in Ra-register order
#: (column-major): Ra0 top-left, Ra1 bottom-left, Ra2 top-right, Ra3
#: bottom-right.
_QUADRANTS: Tuple[Tuple[int, int], ...] = ((0, 0), (8, 0), (0, 8), (8, 8))


def quadrant_origin(reg: int) -> Tuple[int, int]:
    """Origin (row, col) of the 8x8 quadrant held in register ``Ra<reg>``."""
    if not 0 <= reg < 4:
        raise ValueError(f"register index must be in [0, 4), got {reg}")
    return _QUADRANTS[reg]


def a_fragment_index(lane: int, reg: int, half: int) -> Tuple[int, int]:
    """A-operand element (row, col) held by ``lane`` in ``Ra<reg>``, half 0/1.

    A is the 16x16 row-major operand.  Register ``reg`` selects the 8x8
    quadrant (column-major order); within it lane ``l`` owns row ``l // 4``
    and columns ``2 * (l % 4)`` (half 0) and ``2 * (l % 4) + 1`` (half 1).
    """
    if not 0 <= lane < WARP_SIZE:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    if half not in (0, 1):
        raise ValueError(f"half must be 0 or 1, got {half}")
    qr, qc = quadrant_origin(reg)
    return qr + lane // 4, qc + 2 * (lane % 4) + half


def b_fragment_index(lane: int, reg: int, half: int) -> Tuple[int, int]:
    """B-operand element (row, col) held by ``lane`` in ``Rb<reg>``, half 0/1.

    B is the 16x8 column-major operand (K x N).  ``Rb0`` covers K rows
    0..7, ``Rb1`` rows 8..15; lane ``l`` owns rows ``2 * (l % 4) + half``
    and column ``l // 4``.
    """
    if not 0 <= lane < WARP_SIZE:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    if reg not in (0, 1):
        raise ValueError(f"B-fragment register must be 0 or 1, got {reg}")
    if half not in (0, 1):
        raise ValueError(f"half must be 0 or 1, got {half}")
    return 8 * reg + 2 * (lane % 4) + half, lane // 4


def cd_fragment_index(lane: int, reg: int) -> Tuple[int, int]:
    """C/D accumulator element (row, col) held by ``lane`` in ``Rc<reg>``.

    C/D is the 16x8 FP32 accumulator; each lane holds 4 scalars.  Registers
    0,1 cover rows 0..7 (cols ``2 * (l % 4)``, ``+1``); registers 2,3 the
    same columns of rows 8..15.
    """
    if not 0 <= lane < WARP_SIZE:
        raise ValueError(f"lane must be in [0, 32), got {lane}")
    if not 0 <= reg < 4:
        raise ValueError(f"C/D register must be in [0, 4), got {reg}")
    row = lane // 4 + (8 if reg >= 2 else 0)
    col = 2 * (lane % 4) + (reg % 2)
    return row, col


# ---- vectorised gather/scatter ---------------------------------------------------
#
# Fragment tensors use shape (WARP_SIZE, n_regs, 2) for f16 operands and
# (WARP_SIZE, 4) for the f32 accumulator.


def _a_index_arrays() -> Tuple[np.ndarray, np.ndarray]:
    rows = np.empty((WARP_SIZE, 4, 2), dtype=np.intp)
    cols = np.empty((WARP_SIZE, 4, 2), dtype=np.intp)
    for lane in range(WARP_SIZE):
        for reg in range(4):
            for half in (0, 1):
                r, c = a_fragment_index(lane, reg, half)
                rows[lane, reg, half] = r
                cols[lane, reg, half] = c
    return rows, cols


def _b_index_arrays() -> Tuple[np.ndarray, np.ndarray]:
    rows = np.empty((WARP_SIZE, 2, 2), dtype=np.intp)
    cols = np.empty((WARP_SIZE, 2, 2), dtype=np.intp)
    for lane in range(WARP_SIZE):
        for reg in range(2):
            for half in (0, 1):
                r, c = b_fragment_index(lane, reg, half)
                rows[lane, reg, half] = r
                cols[lane, reg, half] = c
    return rows, cols


def _cd_index_arrays() -> Tuple[np.ndarray, np.ndarray]:
    rows = np.empty((WARP_SIZE, 4), dtype=np.intp)
    cols = np.empty((WARP_SIZE, 4), dtype=np.intp)
    for lane in range(WARP_SIZE):
        for reg in range(4):
            r, c = cd_fragment_index(lane, reg)
            rows[lane, reg] = r
            cols[lane, reg] = c
    return rows, cols


_A_ROWS, _A_COLS = _a_index_arrays()
_B_ROWS, _B_COLS = _b_index_arrays()
_CD_ROWS, _CD_COLS = _cd_index_arrays()


def gather_a_fragments(tile: np.ndarray) -> np.ndarray:
    """Distribute a 16x16 A tile into per-lane fragments ``(32, 4, 2)``."""
    tile = np.asarray(tile)
    if tile.shape != (MMA_M, MMA_K):
        raise ValueError(f"A tile must be {MMA_M}x{MMA_K}, got {tile.shape}")
    return tile[_A_ROWS, _A_COLS]


def scatter_a_fragments(frags: np.ndarray) -> np.ndarray:
    """Reassemble a 16x16 A tile from per-lane fragments ``(32, 4, 2)``."""
    frags = np.asarray(frags)
    if frags.shape != (WARP_SIZE, 4, 2):
        raise ValueError(f"A fragments must be (32, 4, 2), got {frags.shape}")
    tile = np.zeros((MMA_M, MMA_K), dtype=frags.dtype)
    tile[_A_ROWS, _A_COLS] = frags
    return tile


def gather_b_fragments(tile: np.ndarray) -> np.ndarray:
    """Distribute a 16x8 B tile (K x N) into fragments ``(32, 2, 2)``."""
    tile = np.asarray(tile)
    if tile.shape != (MMA_K, MMA_N):
        raise ValueError(f"B tile must be {MMA_K}x{MMA_N}, got {tile.shape}")
    return tile[_B_ROWS, _B_COLS]


def gather_cd_fragments(tile: np.ndarray) -> np.ndarray:
    """Distribute a 16x8 accumulator tile into fragments ``(32, 4)``."""
    tile = np.asarray(tile)
    if tile.shape != (MMA_M, MMA_N):
        raise ValueError(f"C/D tile must be {MMA_M}x{MMA_N}, got {tile.shape}")
    return tile[_CD_ROWS, _CD_COLS]


def scatter_cd_fragments(frags: np.ndarray) -> np.ndarray:
    """Reassemble a 16x8 accumulator tile from fragments ``(32, 4)``."""
    frags = np.asarray(frags)
    if frags.shape != (WARP_SIZE, 4):
        raise ValueError(f"C/D fragments must be (32, 4), got {frags.shape}")
    tile = np.zeros((MMA_M, MMA_N), dtype=frags.dtype)
    tile[_CD_ROWS, _CD_COLS] = frags
    return tile
