"""Loop-based reference implementation of the TCA-BME codec.

The production encoder (:func:`repro.core.tca_bme.encode`) is a dense
pile of reshapes and transposes; a subtle axis mistake there would still
round-trip (the decoder inverts the same permutation) while silently
breaking the storage order the SMBD kernel depends on.  This module
re-derives the encoding the slow, obvious way — walking tiles with
explicit loops exactly as the format specification (paper Section 4.2)
reads — so tests can compare the two implementations element by element.

Never use this for real work; it is O(M*K) Python-loop slow by design.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .tca_bme import TCABMEMatrix
from .tiles import DEFAULT_TILE_CONFIG, TileConfig

__all__ = ["encode_reference"]


def _bitmap_and_values(
    block: np.ndarray,
) -> Tuple[int, List[np.float16]]:
    """One BitmapTile: row-major bit scan, values in bit order."""
    bitmap = 0
    values: List[np.float16] = []
    for r in range(8):
        for c in range(8):
            v = block[r, c]
            if v != 0:
                bitmap |= 1 << (r * 8 + c)
                values.append(v)
    return bitmap, values


def encode_reference(
    dense: np.ndarray, config: TileConfig = DEFAULT_TILE_CONFIG
) -> TCABMEMatrix:
    """Encode via the specification's nested tile walk.

    GroupTiles row-major over the padded matrix; TCTiles column-major in
    a GroupTile; BitmapTiles column-major (Ra-register order) in a
    TCTile; bits row-major in a BitmapTile.
    """
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {dense.shape}")
    m, k = dense.shape
    if m == 0 or k == 0:
        raise ValueError("matrix must be non-empty")
    dense16 = dense.astype(np.float16, copy=False)

    pm, pk = config.padded_shape(m, k)
    padded = np.zeros((pm, pk), dtype=np.float16)
    padded[:m, :k] = dense16

    bitmaps: List[int] = []
    values: List[np.float16] = []
    offsets: List[int] = [0]

    for g_r, g_c in config.iter_group_tiles(m, k):
        for t_r, t_c in config.iter_tctiles_in_group():
            for b_r, b_c in config.iter_bitmaptiles_in_tctile():
                r0 = g_r + t_r + b_r
                c0 = g_c + t_c + b_c
                bitmap, tile_values = _bitmap_and_values(
                    padded[r0 : r0 + 8, c0 : c0 + 8]
                )
                bitmaps.append(bitmap)
                values.extend(tile_values)
        offsets.append(len(values))

    return TCABMEMatrix(
        shape=(m, k),
        gtile_offsets=np.asarray(offsets, dtype=np.uint32),
        values=np.asarray(values, dtype=np.float16),
        bitmaps=np.asarray(bitmaps, dtype=np.uint64),
        config=config,
    )
