"""Shared Memory Bitmap Decoding (SMBD) — paper Section 4.3.3, Figure 8.

SMBD expands a TCTile's compressed values into the per-lane register
fragments expected by ``mma.m16n8k16``, using only bit operations:

* ``PopCount`` over whole bitmaps accumulates the running start offset of
  each BitmapTile's slice of the compressed Values array — no explicit
  offsets are stored.
* ``MaskedPopCount`` (Algorithm 2) gives each lane the number of non-zeros
  preceding its first bit, i.e. its private load offset.

Decoding is two-phase per 32-bit register: phase I resolves the even bit
(``a0``) with one MaskedPopCount; phase II resolves the odd bit (``a1``)
by *reusing* phase I's count (incremented if ``a0`` was present), so only
one MaskedPopCount is spent per lane per register.

Four implementations are provided, two lane-faithful references and two
vectorised production paths:

:func:`decode_tctile` / :func:`decode_group`
    Lane-faithful references: iterate lanes exactly as a warp would,
    counting every PopCount / MaskedPopCount / shared-memory load.  Used
    by tests and by the instruction-level simulator.

:func:`decode_group_fast` / :func:`decode_matrix`
    Vectorised decodes (one GroupTile / the whole matrix); bit-identical
    output, orders of magnitude faster in numpy.  :func:`decode_matrix`
    is what the functional SpMM kernel batches its gathers through.

:func:`decode_group_frags`
    Vectorised fragment decode: same ``(32, 4, 2)`` mma fragments as
    :func:`decode_group`, but per-lane offsets come from one exclusive
    cumulative sum over the expanded bitmaps instead of per-lane Python
    ``bit_count`` loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .bitmap import expand_bitmap_rows, masked_popcount, popcount64
from .mma_layout import WARP_SIZE
from .tiles import DEFAULT_TILE_CONFIG, TileConfig

__all__ = [
    "DecodeStats",
    "decode_tctile",
    "decode_group",
    "decode_group_fast",
    "decode_group_frags",
    "decode_matrix",
]


@dataclass
class DecodeStats:
    """Instruction counts accumulated while decoding (per warp).

    These feed the kernel cost model: SMBD work runs on CUDA cores and is
    priced per operation, then overlapped (or not) with Tensor-Core math
    depending on the AsyncPipe setting.
    """

    popcount_ops: int = 0
    masked_popcount_ops: int = 0
    shared_loads: int = 0
    values_decoded: int = 0
    zeros_filled: int = 0

    def merge(self, other: "DecodeStats") -> None:
        self.popcount_ops += other.popcount_ops
        self.masked_popcount_ops += other.masked_popcount_ops
        self.shared_loads += other.shared_loads
        self.values_decoded += other.values_decoded
        self.zeros_filled += other.zeros_filled

    @property
    def total_bit_ops(self) -> int:
        return self.popcount_ops + self.masked_popcount_ops


def decode_tctile(
    bitmaps: np.ndarray,
    values: np.ndarray,
    base_offset: int = 0,
    stats: Optional[DecodeStats] = None,
) -> np.ndarray:
    """Decode one TCTile into A fragments ``(32, 4, 2)`` float16.

    ``bitmaps`` holds the TCTile's four 64-bit bitmaps in Ra-register
    (column-major BitmapTile) order; ``values`` is the compressed value
    stream of the enclosing GroupTile and ``base_offset`` the TCTile's
    start position within it.

    This is the lane-faithful reference implementation: every lane's
    offsets are derived with MaskedPopCount exactly as in the kernel, and
    ``stats`` (if given) is charged for each intrinsic and shared load.
    """
    bitmaps = np.asarray(bitmaps, dtype=np.uint64)
    if bitmaps.shape != (4,):
        raise ValueError(f"a TCTile has 4 bitmaps, got shape {bitmaps.shape}")
    if stats is None:
        stats = DecodeStats()

    frags = np.zeros((WARP_SIZE, 4, 2), dtype=np.float16)
    reg_base = base_offset
    for reg in range(4):
        bmp = int(bitmaps[reg])
        for lane in range(WARP_SIZE):
            # Phase I: even bit (a0), one MaskedPopCount per lane+register.
            preceding = masked_popcount(bmp, lane)
            stats.masked_popcount_ops += 1
            a0_present = (bmp >> (2 * lane)) & 1
            if a0_present:
                frags[lane, reg, 0] = values[reg_base + preceding]
                stats.shared_loads += 1
                stats.values_decoded += 1
            else:
                stats.zeros_filled += 1
            # Phase II: odd bit (a1) reuses the phase-I count.
            a1_present = (bmp >> (2 * lane + 1)) & 1
            if a1_present:
                frags[lane, reg, 1] = values[reg_base + preceding + a0_present]
                stats.shared_loads += 1
                stats.values_decoded += 1
            else:
                stats.zeros_filled += 1
        # Advance to the next BitmapTile's slice with a whole-bitmap PopCount.
        reg_base += int(popcount64(bmp))
        stats.popcount_ops += 1
    return frags


def decode_group(
    group_bitmaps: np.ndarray,
    group_values: np.ndarray,
    config: TileConfig = DEFAULT_TILE_CONFIG,
    stats: Optional[DecodeStats] = None,
) -> List[np.ndarray]:
    """Decode every TCTile of a GroupTile (lane-faithful path).

    Returns the list of fragment tensors in storage (column-major TCTile)
    order.  Offsets between TCTiles are accumulated by PopCount exactly as
    the kernel does — nothing but the GroupTile base address is known a
    priori.
    """
    group_bitmaps = np.asarray(group_bitmaps, dtype=np.uint64)
    per_tt = config.bts_per_tt
    if group_bitmaps.size % per_tt:
        raise ValueError("bitmap count is not a whole number of TCTiles")
    if stats is None:
        stats = DecodeStats()

    out: List[np.ndarray] = []
    offset = 0
    for t in range(group_bitmaps.size // per_tt):
        tile_bitmaps = group_bitmaps[t * per_tt : (t + 1) * per_tt]
        out.append(decode_tctile(tile_bitmaps, group_values, offset, stats))
        offset += int(np.sum(popcount64(tile_bitmaps)))
    return out


def decode_group_fast(
    group_bitmaps: np.ndarray,
    group_values: np.ndarray,
    config: TileConfig = DEFAULT_TILE_CONFIG,
) -> Tuple[np.ndarray, DecodeStats]:
    """Vectorised GroupTile decode to a dense ``(gt_h, gt_w)`` tile.

    Produces the same dense tile as scattering :func:`decode_group`'s
    fragments, but via one boolean scatter.  The returned stats mirror the
    instruction counts the lane-faithful path would have charged (they are
    closed-form functions of the tile geometry and population).
    """
    group_bitmaps = np.asarray(group_bitmaps, dtype=np.uint64)
    mask = expand_bitmap_rows(group_bitmaps)  # (nbt, 64)
    rows = np.zeros(mask.shape, dtype=np.float16)
    rows[mask] = np.asarray(group_values, dtype=np.float16)

    # Reassemble storage-order BitmapTiles into the dense GroupTile.
    c = config
    tr, tc = c.gt_h // c.tt_h, c.gt_w // c.tt_w
    br, bc = c.tt_h // c.bt_h, c.tt_w // c.bt_w
    x = rows.reshape(tc, tr, bc, br, c.bt_h, c.bt_w)
    x = x.transpose(1, 3, 4, 0, 2, 5)  # -> (tr, br, r, tc, bc, c)
    dense = x.reshape(c.gt_h, c.gt_w)

    nbt = group_bitmaps.size
    nnz = int(mask.sum())
    stats = DecodeStats(
        popcount_ops=nbt,
        masked_popcount_ops=nbt * WARP_SIZE,
        shared_loads=nnz,
        values_decoded=nnz,
        zeros_filled=nbt * 64 - nnz,
    )
    return dense, stats


def _closed_form_stats(num_bitmaps: int, nnz: int) -> DecodeStats:
    """The instruction counts the lane-faithful path would have charged."""
    return DecodeStats(
        popcount_ops=num_bitmaps,
        masked_popcount_ops=num_bitmaps * WARP_SIZE,
        shared_loads=nnz,
        values_decoded=nnz,
        zeros_filled=num_bitmaps * 64 - nnz,
    )


def decode_group_frags(
    group_bitmaps: np.ndarray,
    group_values: np.ndarray,
    config: TileConfig = DEFAULT_TILE_CONFIG,
) -> Tuple[np.ndarray, DecodeStats]:
    """Vectorised fragment decode of a whole GroupTile.

    Returns ``(tts_per_gt, 32, 4, 2)`` float16 fragments, bit-identical to
    stacking :func:`decode_group`'s output.  All per-lane MaskedPopCount
    offsets fall out of one exclusive cumulative sum over the expanded
    bitmap bits — the batched equivalent of Algorithm 2's per-lane scans.
    """
    group_bitmaps = np.asarray(group_bitmaps, dtype=np.uint64)
    if group_bitmaps.size % config.bts_per_tt:
        raise ValueError("bitmap count is not a whole number of TCTiles")
    values = np.asarray(group_values, dtype=np.float16)

    mask = expand_bitmap_rows(group_bitmaps)  # (nbt, 64) in bit order
    # Exclusive running count over all bits in storage order: element i of
    # the flat scan is the number of set bits strictly before bit i, i.e.
    # exactly base_offset + MaskedPopCount for that bit's lane.
    flat = mask.reshape(-1)
    idx = np.cumsum(flat) - flat  # exclusive cumsum, shape (nbt * 64,)
    gathered = np.zeros(flat.shape, dtype=np.float16)
    gathered[flat] = values[idx[flat]]

    # Bits 2l / 2l+1 of bitmap r are lane l's (a0, a1) of register r.
    nbt = group_bitmaps.size
    frags = gathered.reshape(nbt, WARP_SIZE, 2)
    frags = frags.reshape(-1, config.bts_per_tt, WARP_SIZE, 2)
    frags = frags.transpose(0, 2, 1, 3)  # -> (tiles, lane, reg, phase)
    return np.ascontiguousarray(frags), _closed_form_stats(nbt, int(flat.sum()))


def decode_matrix(
    bitmaps: np.ndarray,
    values: np.ndarray,
    m: int,
    k: int,
    config: TileConfig = DEFAULT_TILE_CONFIG,
) -> Tuple[np.ndarray, DecodeStats]:
    """Batched SMBD decode of every GroupTile of an encoded matrix.

    Returns ``(GR, GC, gt_h, gt_w)`` float16 dense GroupTiles — the same
    tiles :func:`decode_group_fast` yields one at a time — via a single
    boolean scatter and one reshape/transpose, with no Python loop over
    the ``iter_group_tiles`` walk.  ``GR x GC`` is the GroupTile grid of
    the padded matrix.
    """
    bitmaps = np.asarray(bitmaps, dtype=np.uint64)
    c = config
    gr, gc = c.group_grid(m, k)
    if bitmaps.size != gr * gc * c.bts_per_gt:
        raise ValueError(
            f"expected {gr * gc * c.bts_per_gt} bitmaps for a "
            f"{m}x{k} matrix, got {bitmaps.size}"
        )
    mask = expand_bitmap_rows(bitmaps)  # (NBT, 64) in storage order
    rows = np.zeros(mask.shape, dtype=np.float16)
    rows[mask] = np.asarray(values, dtype=np.float16)

    tr, tc = c.gt_h // c.tt_h, c.gt_w // c.tt_w
    br, bc = c.tt_h // c.bt_h, c.tt_w // c.bt_w
    x = rows.reshape(gr, gc, tc, tr, bc, br, c.bt_h, c.bt_w)
    # -> (GR, GC, tr, br, bit_row, tc, bc, bit_col)
    x = x.transpose(0, 1, 3, 5, 6, 2, 4, 7)
    tiles = x.reshape(gr, gc, c.gt_h, c.gt_w)
    return tiles, _closed_form_stats(int(bitmaps.size), int(mask.sum()))
