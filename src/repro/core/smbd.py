"""Shared Memory Bitmap Decoding (SMBD) — paper Section 4.3.3, Figure 8.

SMBD expands a TCTile's compressed values into the per-lane register
fragments expected by ``mma.m16n8k16``, using only bit operations:

* ``PopCount`` over whole bitmaps accumulates the running start offset of
  each BitmapTile's slice of the compressed Values array — no explicit
  offsets are stored.
* ``MaskedPopCount`` (Algorithm 2) gives each lane the number of non-zeros
  preceding its first bit, i.e. its private load offset.

Decoding is two-phase per 32-bit register: phase I resolves the even bit
(``a0``) with one MaskedPopCount; phase II resolves the odd bit (``a1``)
by *reusing* phase I's count (incremented if ``a0`` was present), so only
one MaskedPopCount is spent per lane per register.

Two implementations are provided:

:func:`decode_tctile`
    Lane-faithful reference: iterates lanes exactly as a warp would,
    counting every PopCount / MaskedPopCount / shared-memory load.  Used
    by tests and by the instruction-level simulator.

:func:`decode_group_fast`
    Vectorised whole-GroupTile decode used by the functional SpMM kernel;
    bit-identical output, orders of magnitude faster in numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .bitmap import expand_bitmap_rows, masked_popcount, popcount64
from .mma_layout import WARP_SIZE
from .tiles import DEFAULT_TILE_CONFIG, TileConfig

__all__ = ["DecodeStats", "decode_tctile", "decode_group", "decode_group_fast"]


@dataclass
class DecodeStats:
    """Instruction counts accumulated while decoding (per warp).

    These feed the kernel cost model: SMBD work runs on CUDA cores and is
    priced per operation, then overlapped (or not) with Tensor-Core math
    depending on the AsyncPipe setting.
    """

    popcount_ops: int = 0
    masked_popcount_ops: int = 0
    shared_loads: int = 0
    values_decoded: int = 0
    zeros_filled: int = 0

    def merge(self, other: "DecodeStats") -> None:
        self.popcount_ops += other.popcount_ops
        self.masked_popcount_ops += other.masked_popcount_ops
        self.shared_loads += other.shared_loads
        self.values_decoded += other.values_decoded
        self.zeros_filled += other.zeros_filled

    @property
    def total_bit_ops(self) -> int:
        return self.popcount_ops + self.masked_popcount_ops


def decode_tctile(
    bitmaps: np.ndarray,
    values: np.ndarray,
    base_offset: int = 0,
    stats: Optional[DecodeStats] = None,
) -> np.ndarray:
    """Decode one TCTile into A fragments ``(32, 4, 2)`` float16.

    ``bitmaps`` holds the TCTile's four 64-bit bitmaps in Ra-register
    (column-major BitmapTile) order; ``values`` is the compressed value
    stream of the enclosing GroupTile and ``base_offset`` the TCTile's
    start position within it.

    This is the lane-faithful reference implementation: every lane's
    offsets are derived with MaskedPopCount exactly as in the kernel, and
    ``stats`` (if given) is charged for each intrinsic and shared load.
    """
    bitmaps = np.asarray(bitmaps, dtype=np.uint64)
    if bitmaps.shape != (4,):
        raise ValueError(f"a TCTile has 4 bitmaps, got shape {bitmaps.shape}")
    if stats is None:
        stats = DecodeStats()

    frags = np.zeros((WARP_SIZE, 4, 2), dtype=np.float16)
    reg_base = base_offset
    for reg in range(4):
        bmp = int(bitmaps[reg])
        for lane in range(WARP_SIZE):
            # Phase I: even bit (a0), one MaskedPopCount per lane+register.
            preceding = masked_popcount(bmp, lane)
            stats.masked_popcount_ops += 1
            a0_present = (bmp >> (2 * lane)) & 1
            if a0_present:
                frags[lane, reg, 0] = values[reg_base + preceding]
                stats.shared_loads += 1
                stats.values_decoded += 1
            else:
                stats.zeros_filled += 1
            # Phase II: odd bit (a1) reuses the phase-I count.
            a1_present = (bmp >> (2 * lane + 1)) & 1
            if a1_present:
                frags[lane, reg, 1] = values[reg_base + preceding + a0_present]
                stats.shared_loads += 1
                stats.values_decoded += 1
            else:
                stats.zeros_filled += 1
        # Advance to the next BitmapTile's slice with a whole-bitmap PopCount.
        reg_base += int(popcount64(bmp))
        stats.popcount_ops += 1
    return frags


def decode_group(
    group_bitmaps: np.ndarray,
    group_values: np.ndarray,
    config: TileConfig = DEFAULT_TILE_CONFIG,
    stats: Optional[DecodeStats] = None,
) -> List[np.ndarray]:
    """Decode every TCTile of a GroupTile (lane-faithful path).

    Returns the list of fragment tensors in storage (column-major TCTile)
    order.  Offsets between TCTiles are accumulated by PopCount exactly as
    the kernel does — nothing but the GroupTile base address is known a
    priori.
    """
    group_bitmaps = np.asarray(group_bitmaps, dtype=np.uint64)
    per_tt = config.bts_per_tt
    if group_bitmaps.size % per_tt:
        raise ValueError("bitmap count is not a whole number of TCTiles")
    if stats is None:
        stats = DecodeStats()

    out: List[np.ndarray] = []
    offset = 0
    for t in range(group_bitmaps.size // per_tt):
        tile_bitmaps = group_bitmaps[t * per_tt : (t + 1) * per_tt]
        out.append(decode_tctile(tile_bitmaps, group_values, offset, stats))
        offset += int(np.sum(popcount64(tile_bitmaps)))
    return out


def decode_group_fast(
    group_bitmaps: np.ndarray,
    group_values: np.ndarray,
    config: TileConfig = DEFAULT_TILE_CONFIG,
) -> Tuple[np.ndarray, DecodeStats]:
    """Vectorised GroupTile decode to a dense ``(gt_h, gt_w)`` tile.

    Produces the same dense tile as scattering :func:`decode_group`'s
    fragments, but via one boolean scatter.  The returned stats mirror the
    instruction counts the lane-faithful path would have charged (they are
    closed-form functions of the tile geometry and population).
    """
    group_bitmaps = np.asarray(group_bitmaps, dtype=np.uint64)
    mask = expand_bitmap_rows(group_bitmaps)  # (nbt, 64)
    rows = np.zeros(mask.shape, dtype=np.float16)
    rows[mask] = np.asarray(group_values, dtype=np.float16)

    # Reassemble storage-order BitmapTiles into the dense GroupTile.
    c = config
    tr, tc = c.gt_h // c.tt_h, c.gt_w // c.tt_w
    br, bc = c.tt_h // c.bt_h, c.tt_w // c.bt_w
    x = rows.reshape(tc, tr, bc, br, c.bt_h, c.bt_w)
    x = x.transpose(1, 3, 4, 0, 2, 5)  # -> (tr, br, r, tc, bc, c)
    dense = x.reshape(c.gt_h, c.gt_w)

    nbt = group_bitmaps.size
    nnz = int(mask.sum())
    stats = DecodeStats(
        popcount_ops=nbt,
        masked_popcount_ops=nbt * WARP_SIZE,
        shared_loads=nnz,
        values_decoded=nnz,
        zeros_filled=nbt * 64 - nnz,
    )
    return dense, stats
