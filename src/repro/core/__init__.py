"""SpInfer's primary contribution: TCA-BME encoding and SMBD decoding.

Public surface:

* :class:`repro.core.tiles.TileConfig` — the three-level tile geometry.
* :func:`repro.core.tca_bme.encode` / :class:`~repro.core.tca_bme.TCABMEMatrix`
  — the Tensor-Core-Aware Bitmap Encoding.
* :func:`repro.core.smbd.decode_tctile` and friends — Shared Memory Bitmap
  Decoding into ``mma`` register fragments.
* :mod:`repro.core.bitmap` — PopCount / MaskedPopCount primitives.
* :mod:`repro.core.mma_layout` — the ``mma.m16n8k16`` fragment maps.
"""

from .bitmap import (
    bitmap_from_block,
    block_mask_from_bitmap,
    masked_popcount,
    popcount64,
)
from .bitset_ops import mask_columns, pattern_density_per_tile, pattern_overlap
from .mma_layout import (
    gather_a_fragments,
    gather_b_fragments,
    gather_cd_fragments,
    scatter_a_fragments,
    scatter_cd_fragments,
)
from .quant import QuantizedTCABME, dequantize_values, quantize_values
from .reference import encode_reference
from .smbd import DecodeStats, decode_group, decode_group_fast, decode_tctile
from .tca_bme import TCABMEMatrix, encode, tca_bme_storage_bytes
from .tiles import DEFAULT_TILE_CONFIG, TileConfig

__all__ = [
    "DEFAULT_TILE_CONFIG",
    "QuantizedTCABME",
    "mask_columns",
    "pattern_density_per_tile",
    "pattern_overlap",
    "dequantize_values",
    "encode_reference",
    "quantize_values",
    "DecodeStats",
    "TCABMEMatrix",
    "TileConfig",
    "bitmap_from_block",
    "block_mask_from_bitmap",
    "decode_group",
    "decode_group_fast",
    "decode_tctile",
    "encode",
    "gather_a_fragments",
    "gather_b_fragments",
    "gather_cd_fragments",
    "masked_popcount",
    "popcount64",
    "scatter_a_fragments",
    "scatter_cd_fragments",
    "tca_bme_storage_bytes",
]
