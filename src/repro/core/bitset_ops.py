"""Bitmap algebra over encoded TCA-BME matrices.

Operations on sparsity *patterns* that work directly on the 64-bit
bitmaps — no densify, no re-scan of values:

* :func:`pattern_overlap` — Jaccard similarity of two matrices' masks by
  ANDing bitmaps and popcounting, useful for comparing what different
  pruning criteria keep;
* :func:`mask_columns` — zero selected K-columns of an encoded matrix
  and re-emit a valid encoding, the fine-grained (per-column rather than
  per-GroupTile) version of the dynamic activation-sparsity extension;
* :func:`pattern_density_per_tile` — per-BitmapTile population counts.

All functions exploit the format's bit layout (bit = row*8 + col inside
a tile): a K-column mask becomes one precomputed 64-bit mask per
BitmapTile column position.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .bitmap import expand_bitmap_rows, popcount64
from .tca_bme import TCABMEMatrix

__all__ = [
    "pattern_overlap",
    "mask_columns",
    "pattern_density_per_tile",
]


def pattern_overlap(a: TCABMEMatrix, b: TCABMEMatrix) -> float:
    """Jaccard similarity of two encodings' non-zero patterns.

    Pure bitmap arithmetic: ``|A & B| / |A | B|`` summed over tiles.
    Matrices must share shape and tile configuration.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.config != b.config:
        raise ValueError("tile configurations differ")
    inter = int(np.sum(popcount64(a.bitmaps & b.bitmaps)))
    union = int(np.sum(popcount64(a.bitmaps | b.bitmaps)))
    return inter / union if union else 1.0


def _column_tile_masks(
    k: int, keep: np.ndarray, bt_h: int, bt_w: int
) -> np.ndarray:
    """64-bit keep-masks for every BitmapTile column strip.

    ``keep[c]`` says whether matrix column ``c`` survives; the returned
    array has one mask per tile-column index ``c0 // bt_w``, with bit
    ``r * bt_w + j`` set iff column ``c0 + j`` survives (independent of
    the row, so each row byte repeats the same pattern).
    """
    pk = -(-k // bt_w) * bt_w
    padded = np.zeros(pk, dtype=bool)
    padded[:k] = keep
    strips = padded.reshape(-1, bt_w)  # (tile_cols, bt_w)
    weights = np.left_shift(np.uint64(1), np.arange(bt_w, dtype=np.uint64))
    row_pattern = (strips.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)
    mask = np.zeros(strips.shape[0], dtype=np.uint64)
    for r in range(bt_h):
        mask |= row_pattern << np.uint64(r * bt_w)
    return mask


def mask_columns(enc: TCABMEMatrix, keep: np.ndarray) -> TCABMEMatrix:
    """Zero the K-columns where ``keep`` is False; returns a new encoding.

    Bitmaps are ANDed with per-tile-column masks; the surviving values
    are gathered from the old value stream by comparing old and new
    bitmaps — O(NNZ + NBT), never materialising the dense matrix.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != (enc.k,):
        raise ValueError(f"keep mask must have length K={enc.k}")
    c = enc.config
    col_masks = _column_tile_masks(enc.k, keep, c.bt_h, c.bt_w)

    # Which tile-column strip each storage-order BitmapTile sits in.
    origins = np.array(list(c.iter_bitmaptiles(enc.m, enc.k)), dtype=np.int64)
    tile_cols = origins[:, 1] // c.bt_w
    # Padding tiles beyond the logical K keep nothing anyway (no bits set).
    tile_cols = np.minimum(tile_cols, col_masks.size - 1)

    new_bitmaps = enc.bitmaps & col_masks[tile_cols]

    # Gather surviving values: positions where the old bitmap had a bit
    # keep their value iff the new bitmap also has it.
    old_mask = expand_bitmap_rows(enc.bitmaps)
    new_mask = expand_bitmap_rows(new_bitmaps)
    survived = new_mask[old_mask]  # aligned with enc.values
    new_values = enc.values[survived]

    per_gt = c.bts_per_gt
    nnz_per_gt = popcount64(new_bitmaps).reshape(-1, per_gt).sum(axis=1)
    offsets = np.concatenate(([0], np.cumsum(nnz_per_gt))).astype(np.uint32)

    return TCABMEMatrix(
        shape=enc.shape,
        gtile_offsets=offsets,
        values=new_values,
        bitmaps=new_bitmaps,
        config=c,
    )


def pattern_density_per_tile(enc: TCABMEMatrix) -> Tuple[np.ndarray, float]:
    """Per-BitmapTile populations and their coefficient of variation.

    High variation means uneven decode work across warps — the load-
    balance signal :mod:`repro.pruning.analysis` reports at GroupTile
    granularity, here at warp granularity.
    """
    counts = np.asarray(popcount64(enc.bitmaps), dtype=np.float64)
    mean = counts.mean() if counts.size else 0.0
    cv = float(counts.std() / mean) if mean else 0.0
    return counts.astype(np.int64), cv
