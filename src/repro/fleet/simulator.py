"""The multi-node autoscaling fleet simulator.

This is the first subsystem that exercises every prior pillar at once:

1. replica classes come from the deployment layer (each one a
   lint-validated :class:`DeploymentSpec`, priced in $/GPU-hour);
2. replicas are :class:`~repro.runtime.core.GPUPool`s behind one
   :class:`~repro.runtime.faults.FaultTolerantRuntime`, so crashes,
   stragglers and recovery policies compose with scaling for free;
3. sessions ride the PR-8 prefix machinery — and on scale-down, a
   draining replica *migrates* its session KV to a survivor
   (:meth:`SessionManager.migrate_prefix`) instead of forcing every
   session to re-prefill its history.

Scaling is event-driven and fully deterministic: an
:class:`AutoscalerPolicy` is evaluated on a fixed cadence as timed
:class:`EventLoop` events; scale-up schedules a provisioning completion
(``ReplicaClass.provision_s`` later) that registers a new pool with the
router; scale-down marks a victim as draining (the router stops routing
to it), waits for resident work to finish, ships the session prefixes
to a survivor over the class's interconnect, and retires the pool.
Cost accrues per replica from provision start to retirement/crash — an
idle-but-booted replica bills exactly like a busy one, which is the
whole reason static over-provisioning loses on cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..gpu.specs import get_gpu
from ..llm.serving import ServingConfig, ServingSimulator
from ..runtime import (
    EventLoop,
    FaultPlan,
    FaultTolerantRuntime,
    RuntimeStats,
    SessionRequest,
)
from ..runtime.events import EventKind
from ..server.sessions import SessionManager, SessionSpec
from .autoscaler import AutoscalerPolicy
from .spec import FleetSpec, ReplicaClass

__all__ = [
    "ReplicaInfo",
    "FleetOutcome",
    "FleetSimulator",
]

#: TTFT ceiling used for the goodput-SLO attainment metric (seconds).
SLO_TTFT_S = 1.0


@dataclass
class ReplicaInfo:
    """Lifecycle record of one replica — the unit of the cost model."""

    name: str
    cls: ReplicaClass
    up_s: float
    ready_s: float
    state: str = "active"  # booting|active|draining|retiring|retired|crashed
    down_s: Optional[float] = None

    def billed_until(self, makespan_s: float) -> float:
        return self.down_s if self.down_s is not None else makespan_s

    def cost_usd(self, makespan_s: float) -> float:
        hours = max(0.0, self.billed_until(makespan_s) - self.up_s) / 3600.0
        return hours * self.cls.hourly_cost


@dataclass
class FleetOutcome:
    """Everything one policy run produced, ready for report/lint."""

    policy: AutoscalerPolicy
    stats: RuntimeStats
    replicas: List[ReplicaInfo]
    turns_submitted: int
    sessions_submitted: int
    sessions_completed: int
    sessions_aborted: int
    scale_ups: int
    scale_downs: int
    scale_denied: int
    drains: int
    kills: int
    kv_migrations: int
    kv_migrated_tokens: int
    kv_migration_drops: int
    prefix_leaked_blocks: int
    slo_attained: int
    makespan_s: float

    @property
    def cost_usd(self) -> float:
        return sum(r.cost_usd(self.makespan_s) for r in self.replicas)

    @property
    def replica_seconds(self) -> float:
        return sum(
            max(0.0, r.billed_until(self.makespan_s) - r.up_s)
            for r in self.replicas
        )

    @property
    def slo_attainment(self) -> float:
        """Fraction of submitted turns completed within the TTFT SLO —
        the "goodput SLO" axis static provisioning is judged on."""
        if not self.turns_submitted:
            return 1.0
        return self.slo_attained / self.turns_submitted

    @property
    def cost_per_mtok(self) -> float:
        """Dollars per million completed output tokens."""
        tokens = sum(r.output_len for r in self.stats.completed)
        if tokens == 0:
            return math.inf
        return self.cost_usd * 1e6 / tokens

    def replica_extremes(self) -> Tuple[int, int]:
        """(peak, trough) concurrent replica count over [0, makespan),
        computed exactly from the lifecycle log.  Replicas still alive
        at the end contribute no down-step, so the final live count —
        not zero — is the last sample."""
        deltas: Dict[float, int] = {}
        for r in self.replicas:
            deltas[r.up_s] = deltas.get(r.up_s, 0) + 1
            if r.down_s is not None:
                deltas[r.down_s] = deltas.get(r.down_s, 0) - 1
        count = peak = 0
        trough: Optional[int] = None
        for t in sorted(deltas):
            count += deltas[t]
            peak = max(peak, count)
            trough = count if trough is None else min(trough, count)
        return peak, max(0, trough if trough is not None else 0)


class FleetSimulator:
    """Drive one traffic workload through one autoscaling policy."""

    def __init__(
        self,
        fleet: FleetSpec,
        policy: AutoscalerPolicy,
        recovery,
        fault_plan: Optional[FaultPlan] = None,
        horizon_s: float = 16.0,
        sched_policy: str = "fcfs",
        chunk_tokens: int = 128,
        loop: Optional[EventLoop] = None,
    ) -> None:
        self.fleet = fleet
        self.policy = policy
        self.horizon_s = horizon_s
        self.loop = loop if loop is not None else EventLoop()
        self._sims: Dict[str, ServingSimulator] = {}
        for cls in fleet.classes:
            self._sims[cls.name] = ServingSimulator(
                ServingConfig(
                    model=cls.model,
                    framework=cls.framework,
                    gpu=cls.gpu,
                    max_batch=cls.max_batch,
                    policy=sched_policy,
                    chunked_prefill=True,
                    chunk_tokens=chunk_tokens,
                    preemption=True,
                    kv_cap_tokens=cls.kv_cap_tokens,
                )
            )
        self.replicas: Dict[str, ReplicaInfo] = {}
        self._pool_seq = 0
        # The initial fleet: min_replicas, cheapest classes first, live
        # at t=0 (the cold-start lag only applies to elastic additions).
        pools = []
        for _ in range(policy.min_replicas):
            cls = self._pick_class()
            if cls is None:
                raise ValueError(
                    f"fleet {fleet.name!r} cannot host "
                    f"{policy.min_replicas} replicas"
                )
            name = self._next_name()
            self.replicas[name] = ReplicaInfo(
                name=name, cls=cls, up_s=0.0, ready_s=0.0
            )
            pools.append(self._build_pool(cls, name))
        self.runtime = FaultTolerantRuntime(
            pools,
            recovery,
            policy=sched_policy,
            prefill_mode="chunked",
            chunk_tokens=chunk_tokens,
            preemption=True,
            fault_plan=fault_plan,
            loop=self.loop,
        )
        self.sessions = SessionManager(self.runtime, enabled=True)
        self.runtime.terminal_listener = self._on_terminal
        # Session/turn bookkeeping (the lean cousin of StreamingServer).
        self._specs: Dict[int, SessionSpec] = {}
        self._turn_of: Dict[int, Tuple[int, int]] = {}
        self._history: Dict[int, int] = {}
        self._next_request_id = 0
        self._open_sessions = 0
        self.requests: List[SessionRequest] = []
        self.sessions_completed = 0
        self.sessions_aborted = 0
        self.prefix_leaks: Dict[int, List[Tuple[str, int]]] = {}
        # Scaling bookkeeping.
        self._last_scale_t = -math.inf
        self.scale_ups = 0
        self.scale_downs = 0
        self.scale_denied = 0
        self.drains = 0
        self.kills = 0

    # ---- replica construction --------------------------------------------------------

    def _next_name(self) -> str:
        name = f"gpu{self._pool_seq}"
        self._pool_seq += 1
        return name

    def _build_pool(self, cls: ReplicaClass, name: str):
        return self._sims[cls.name].build_pool(name=name)

    def _class_population(self, cls: ReplicaClass) -> int:
        """Replicas of ``cls`` that are (or will be) consuming budget."""
        return sum(
            1
            for name in sorted(self.replicas)
            if self.replicas[name].cls.name == cls.name
            and self.replicas[name].state
            in ("booting", "active", "draining", "retiring")
        )

    def _pick_class(self) -> Optional[ReplicaClass]:
        """Cheapest class with headroom under its per-class ceiling."""
        for cls in self.fleet.by_cost():
            if self._class_population(cls) < cls.max_replicas:
                return cls
        return None

    # ---- load signals ----------------------------------------------------------------

    def _active(self) -> List[ReplicaInfo]:
        out = []
        # repro: allow S003 audited: replicas is appended in event order
        for info in self.replicas.values():
            if info.state != "active":
                continue
            sched = self.runtime._by_pool.get(info.name)
            if sched is not None and sched.pool.alive:
                out.append(info)
        return out

    def _booting(self) -> int:
        return sum(
            1
            for name in sorted(self.replicas)
            if self.replicas[name].state == "booting"
        )

    def _signals(self) -> Tuple[int, float, int]:
        """(count, utilization, queue_depth) for the policy decision."""
        active = self._active()
        busy = cap = queued = 0
        for info in active:
            sched = self.runtime._by_pool[info.name]
            busy += len(sched._running)
            cap += info.cls.max_batch
            queued += len(sched._policy)
        util = busy / cap if cap else 1.0
        return len(active) + self._booting(), util, queued

    # ---- the scaling loop ------------------------------------------------------------

    def _mark_crashes(self) -> None:
        for info in self.replicas.values():
            if info.state in ("booting", "retired", "crashed"):
                continue
            sched = self.runtime._by_pool.get(info.name)
            if sched is not None and not sched.pool.alive:
                info.state = "crashed"
                info.down_s = self.loop.now

    def _tick(self) -> None:
        now = self.loop.now
        self._mark_crashes()
        count, util, queued = self._signals()
        desired = self.policy.desired_replicas(count, util, queued)
        if (
            desired != count
            and now - self._last_scale_t >= self.policy.cooldown_s
        ):
            if desired > count:
                self._scale_up(desired - count)
            else:
                self._scale_down(count - desired)
            self._last_scale_t = now
        if (
            now < self.horizon_s
            or self._open_sessions > 0
            or any(
                r.state in ("booting", "draining", "retiring")
                for r in self.replicas.values()
            )
        ):
            self.loop.schedule_after(self.policy.interval_s, self._tick)

    def _scale_up(self, k: int) -> None:
        now = self.loop.now
        for _ in range(k):
            cls = self._pick_class()
            if cls is None:
                # Every class is at its ceiling: record the refusal
                # instead of silently capping (the planner reports it).
                self.scale_denied += 1
                continue
            name = self._next_name()
            self.replicas[name] = ReplicaInfo(
                name=name,
                cls=cls,
                up_s=now,
                ready_s=now + cls.provision_s,
                state="booting",
            )
            self.scale_ups += 1
            self.loop.schedule_at(
                now + cls.provision_s,
                (lambda n: lambda: self._provisioned(n))(name),
            )

    def _provisioned(self, name: str) -> None:
        info = self.replicas[name]
        if info.state != "booting":  # pragma: no cover - defensive
            return
        info.state = "active"
        sched = self.runtime.add_pool(self._build_pool(info.cls, name))
        self.sessions.attach_scheduler(sched)

    def _scale_down(self, k: int) -> None:
        victims = sorted(
            self._active(),
            key=lambda r: (
                -r.cls.hourly_cost,  # shed pricey capacity first
                len(self.runtime._by_pool[r.name]._running)
                + len(self.runtime._by_pool[r.name]._policy),
                r.name,
            ),
        )
        for info in victims[:k]:
            self._begin_drain(info)

    def _begin_drain(self, info: ReplicaInfo) -> None:
        info.state = "draining"
        self.drains += 1
        self.runtime.set_draining(info.name)
        sched = self.runtime._by_pool[info.name]
        if self.policy.kill_in_flight:
            # The A002 fixture behaviour: abort resident work instead of
            # letting it finish.  Every victim lands in the shed bucket,
            # so conservation still holds — the loss is the point.
            self.kills += self._kill_resident(sched)
        # An already-empty pool finishes its drain end-of-instant.
        self.loop.defer(self._check_drains)

    def _kill_resident(self, sched) -> int:
        now = self.loop.now
        killed = 0
        for req in [s.req for s in list(sched._running)]:
            if sched.evict(
                req, EventKind.SHED, self.runtime.stats.shed,
                reason="scale-down kill",
            ):
                killed += 1
        while True:
            queued = sched._policy.pop_ready(now)
            if queued is None:
                break
            self.runtime.trace.record(
                now, EventKind.SHED, queued.request_id, sched.pool.name,
                reason="scale-down kill",
            )
            self.runtime.stats.shed.append(queued)
            sched._resolve(queued)
            killed += 1
        return killed

    def _check_drains(self) -> None:
        self._mark_crashes()
        for info in list(self.replicas.values()):
            if info.state != "draining":
                continue
            sched = self.runtime._by_pool[info.name]
            if sched._running or sched._policy:
                continue  # still finishing resident work
            self._finish_drain(info)

    def _finish_drain(self, info: ReplicaInfo) -> None:
        info.state = "retiring"
        now = self.loop.now
        sched = self.runtime._by_pool[info.name]
        moved_tokens = 0
        if self.policy.migrate_kv:
            for session_id in self.sessions.sessions_on(info.name):
                target = self.runtime.route()
                if target is None:
                    self.sessions.drop_prefixes_on(info.name)
                    break
                moved_tokens += self.sessions.migrate_prefix(
                    session_id, target
                )
        else:
            self.sessions.drop_prefixes_on(info.name)
        if moved_tokens:
            # Ship time over the class interconnect; the replica bills
            # until the transfer lands.
            gbs = get_gpu(info.cls.gpu).interconnect_gbs
            bytes_moved = moved_tokens * sched.pool.kv_per_token
            delay = bytes_moved / (gbs * 1e9)
            self.loop.schedule_at(
                now + delay,
                (lambda n: lambda: self._retire(n))(info.name),
            )
        else:
            self._retire(info.name)

    def _retire(self, name: str) -> None:
        info = self.replicas[name]
        if info.state != "retiring":  # pragma: no cover - defensive
            return
        self.runtime.retire_pool(name)
        info.state = "retired"
        info.down_s = self.loop.now
        self.scale_downs += 1

    # ---- turn lifecycle (StreamingServer's, minus the gate) --------------------------

    def _begin_turn(self, session_id: int, turn_idx: int) -> None:
        spec = self._specs[session_id]
        turn = spec.turns[turn_idx]
        history = self._history.get(session_id, 0)
        req = SessionRequest(
            request_id=self._next_request_id,
            arrival_s=self.loop.now,
            prompt_len=history + turn.new_tokens,
            output_len=turn.output_len,
            session_id=session_id,
            turn=turn_idx,
            tenant=spec.tenant,
            priority=spec.priority,
            cached_tokens=history,
        )
        self._next_request_id += 1
        self.requests.append(req)
        self._turn_of[req.request_id] = (session_id, turn_idx)
        prefer = self.sessions.pool_for(session_id)
        self.runtime.submit(req, prefer=prefer)

    def _abort_session(self, session_id: int) -> None:
        self.sessions_aborted += 1
        self._open_sessions -= 1
        leaked = self.sessions.end_session(session_id)
        if leaked:
            self.prefix_leaks[session_id] = leaked

    def _on_terminal(self, req) -> None:
        info = self._turn_of.pop(req.request_id, None)
        if info is not None:
            session_id, turn_idx = info
            spec = self._specs[session_id]
            completed = (
                req.finish_s is not None and req.generated >= req.output_len
            )
            if not completed:
                self._abort_session(session_id)
            else:
                self._history[session_id] = req.prompt_len + req.output_len
                if turn_idx + 1 < len(spec.turns):
                    think = spec.turns[turn_idx + 1].think_s
                    self.loop.schedule_after(
                        think,
                        (lambda s, t: lambda: self._begin_turn(s, t))(
                            session_id, turn_idx + 1
                        ),
                    )
                else:
                    self.sessions_completed += 1
                    self._open_sessions -= 1
                    leaked = self.sessions.end_session(session_id)
                    if leaked:
                        self.prefix_leaks[session_id] = leaked
        # Terminals are the drain's progress signal: no polling needed.
        self._check_drains()

    # ---- entry point -----------------------------------------------------------------

    def run(self, specs: Sequence[SessionSpec]) -> FleetOutcome:
        if not specs:
            raise ValueError("empty session workload")
        if len({s.session_id for s in specs}) != len(specs):
            raise ValueError("session ids must be unique")
        for spec in sorted(specs, key=lambda s: (s.start_s, s.session_id)):
            self._specs[spec.session_id] = spec
            self._open_sessions += 1
            self.loop.schedule_at(
                spec.start_s,
                (lambda sid: lambda: self._begin_turn(sid, 0))(
                    spec.session_id
                ),
            )
        self.loop.schedule_at(self.policy.interval_s, self._tick)
        self.loop.run()
        for session_id, leaked in self.sessions.teardown().items():
            self.prefix_leaks.setdefault(session_id, leaked)
        stats = self.runtime.finalize()
        self._mark_crashes()
        slo_attained = sum(
            1
            for r in stats.completed
            if r.ttft_s is not None and r.ttft_s <= SLO_TTFT_S
        )
        return FleetOutcome(
            policy=self.policy,
            stats=stats,
            replicas=sorted(
                self.replicas.values(), key=lambda r: (r.up_s, r.name)
            ),
            turns_submitted=len(self.requests),
            sessions_submitted=len(self._specs),
            sessions_completed=self.sessions_completed,
            sessions_aborted=self.sessions_aborted,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            scale_denied=self.scale_denied,
            drains=self.drains,
            kills=self.kills,
            kv_migrations=self.sessions.migrations,
            kv_migrated_tokens=self.sessions.migrated_tokens,
            kv_migration_drops=self.sessions.migration_drops,
            prefix_leaked_blocks=sum(
                len(self.prefix_leaks[name])
                for name in sorted(self.prefix_leaks)
            ),
            slo_attained=slo_attained,
            makespan_s=stats.makespan_s,
        )
