"""Deterministic fleet-scale traffic curves.

A fleet simulation is only as trustworthy as its arrivals: the diurnal
swing (overnight trough → daytime crest) is exactly what an autoscaler
exists to track, and a burst is what it must absorb without flapping.
This module draws those curves the same way :class:`FaultPlan` draws
faults — every random number comes from one pinned
``np.random.default_rng(seed)`` at build time, in a fixed draw order,
so two simulations fed the same profile see byte-identical workloads
(the property the ``repro fleet --json`` replay gate rests on).

Arrivals follow a non-homogeneous Poisson process sampled by thinning:
candidate arrivals are drawn at the peak rate and accepted with
probability ``rate_at(t) / peak_rate``.  Each accepted arrival becomes
a multi-turn :class:`~repro.server.sessions.SessionSpec` whose turn
lengths and think times are drawn from the same generator.

The profile models a *population*, not just a curve: ``modeled_users``
and ``requests_per_user_per_day`` define the real-world aggregate rate,
and :meth:`TrafficProfile.scale_factor` is the ratio between that and
the simulated rate — the capacity planner multiplies replica counts and
dollar costs by it to report fleet-scale numbers from a tractable
1-in-N sample of the traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from ..server.sessions import SessionSpec, TurnSpec

__all__ = [
    "TRAFFIC_SHAPES",
    "TrafficProfile",
    "generate_sessions",
    "builtin_traffic_profiles",
]

TRAFFIC_SHAPES: Tuple[str, ...] = ("steady", "diurnal", "bursty")


@dataclass(frozen=True)
class TrafficProfile:
    """One pinned arrival curve plus the session shape riding on it."""

    name: str
    shape: str = "diurnal"
    #: Simulated horizon — one compressed "day" for the diurnal shape.
    horizon_s: float = 16.0
    #: Sessions/s at the trough and the crest of the curve.
    base_rate: float = 0.6
    peak_rate: float = 6.0
    #: Diurnal cycles within the horizon (1.0 = one day).
    periods: float = 1.0
    #: Bursty shape: a peak-rate square wave of ``burst_len_s`` every
    #: ``burst_every_s`` on top of the base rate.
    burst_every_s: float = 5.0
    burst_len_s: float = 1.2
    #: Session shape (drawn per session from the same generator).
    turns: int = 3
    mean_new_tokens: int = 64
    mean_output: int = 48
    mean_think_s: float = 0.5
    #: The population this curve is a sample of.
    modeled_users: int = 2_000_000
    requests_per_user_per_day: float = 24.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shape not in TRAFFIC_SHAPES:
            raise ValueError(
                f"unknown traffic shape {self.shape!r}; "
                f"pick one of {TRAFFIC_SHAPES}"
            )
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if not 0 < self.base_rate <= self.peak_rate:
            raise ValueError("need 0 < base_rate <= peak_rate")
        if self.turns <= 0:
            raise ValueError("sessions need at least one turn")
        if self.burst_every_s <= 0 or self.burst_len_s <= 0:
            raise ValueError("burst cadence must be positive")
        if self.modeled_users <= 0 or self.requests_per_user_per_day <= 0:
            raise ValueError("the modeled population must be positive")

    def quick(self) -> "TrafficProfile":
        """A shorter variant for CI gates and the lint sweep."""
        return replace(
            self,
            horizon_s=round(self.horizon_s / 2, 6),
            burst_every_s=round(self.burst_every_s / 2, 6),
        )

    # ---- the curve -------------------------------------------------------------------

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (sessions/s) at time ``t``."""
        if t < 0 or t >= self.horizon_s:
            return 0.0
        if self.shape == "steady":
            return self.base_rate
        if self.shape == "diurnal":
            swing = (self.peak_rate - self.base_rate) * 0.5
            phase = 2.0 * math.pi * self.periods * t / self.horizon_s
            return self.base_rate + swing * (1.0 - math.cos(phase))
        # bursty: square-wave bursts at peak rate over a base floor.
        if (t % self.burst_every_s) < self.burst_len_s:
            return self.peak_rate
        return self.base_rate

    def mean_rate(self, samples: int = 512) -> float:
        """Time-averaged rate over the horizon (fixed-grid midpoint
        rule — deterministic, no RNG)."""
        dt = self.horizon_s / samples
        total = sum(
            self.rate_at((k + 0.5) * dt) for k in range(samples)
        )
        return total / samples

    def scale_factor(self) -> float:
        """How many real-world sessions each simulated session stands
        for: modeled aggregate rate / simulated mean rate."""
        modeled = (
            self.modeled_users * self.requests_per_user_per_day / 86400.0
        )
        return modeled / self.mean_rate()


def generate_sessions(profile: TrafficProfile) -> List[SessionSpec]:
    """Draw the pinned session workload for one profile.

    All randomness happens here, in a fixed draw order; the returned
    specs are plain data.  Thinning keeps the draw count itself a
    deterministic function of the seed, so replays are byte-identical.
    """
    rng = np.random.default_rng(profile.seed)
    out: List[SessionSpec] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / profile.peak_rate))
        if t >= profile.horizon_s:
            break
        accept = float(rng.uniform()) * profile.peak_rate
        if accept > profile.rate_at(t):
            continue  # thinned: the curve is below peak here
        n_turns = int(rng.integers(1, profile.turns + 2))
        turns = []
        for k in range(n_turns):
            new_tokens = max(8, int(rng.poisson(profile.mean_new_tokens)))
            output_len = max(8, int(rng.poisson(profile.mean_output)))
            think = (
                0.0
                if k == 0
                else round(float(rng.exponential(profile.mean_think_s)), 6)
            )
            turns.append(
                TurnSpec(
                    new_tokens=new_tokens,
                    output_len=output_len,
                    think_s=think,
                )
            )
        out.append(
            SessionSpec(
                session_id=len(out),
                start_s=round(t, 6),
                turns=tuple(turns),
            )
        )
    if not out:
        raise ValueError(
            f"profile {profile.name!r} generated no sessions; raise the "
            f"rates or the horizon"
        )
    return out


def builtin_traffic_profiles() -> Dict[str, TrafficProfile]:
    """Pinned profiles used by ``repro fleet``, the bench and the lint
    sweep.  Rates are calibrated to the builtin replica classes: one
    replica saturates near the crest, so the autoscaler has real work."""
    return {
        "diurnal": TrafficProfile(name="diurnal", shape="diurnal", seed=0),
        "bursty": TrafficProfile(
            name="bursty",
            shape="bursty",
            base_rate=0.5,
            peak_rate=6.0,
            seed=3,
        ),
        "steady": TrafficProfile(
            name="steady",
            shape="steady",
            base_rate=2.0,
            peak_rate=2.0,
            seed=7,
        ),
    }
