"""``repro.fleet`` — fleet-scale capacity planning and autoscaling.

The composition rung above single-pool serving: deterministic traffic
curves (:mod:`~repro.fleet.traffic`), priced heterogeneous replica
classes (:mod:`~repro.fleet.spec`), pure scaling policies with broken
fixtures (:mod:`~repro.fleet.autoscaler`), the event-driven elastic
simulator (:mod:`~repro.fleet.simulator`), and the cost-vs-goodput
capacity planner behind ``repro fleet`` (:mod:`~repro.fleet.planner`).
"""

from .autoscaler import (
    AUTOSCALER_POLICIES,
    BROKEN_AUTOSCALER_POLICIES,
    AutoscalerPolicy,
    get_autoscaler_policy,
    static_policy,
)
from .planner import (
    FleetConfig,
    fleet_report,
    fleet_report_json,
    pareto_frontier,
    run_fleet_policy,
)
from .simulator import SLO_TTFT_S, FleetOutcome, FleetSimulator, ReplicaInfo
from .spec import (
    GPU_COST_PER_HOUR,
    FleetSpec,
    ReplicaClass,
    builtin_fleet_specs,
)
from .traffic import (
    TRAFFIC_SHAPES,
    TrafficProfile,
    builtin_traffic_profiles,
    generate_sessions,
)

__all__ = [
    "AUTOSCALER_POLICIES",
    "BROKEN_AUTOSCALER_POLICIES",
    "AutoscalerPolicy",
    "get_autoscaler_policy",
    "static_policy",
    "FleetConfig",
    "fleet_report",
    "fleet_report_json",
    "pareto_frontier",
    "run_fleet_policy",
    "SLO_TTFT_S",
    "FleetOutcome",
    "FleetSimulator",
    "ReplicaInfo",
    "GPU_COST_PER_HOUR",
    "FleetSpec",
    "ReplicaClass",
    "builtin_fleet_specs",
    "TRAFFIC_SHAPES",
    "TrafficProfile",
    "builtin_traffic_profiles",
    "generate_sessions",
]
