"""Autoscaling policies: when to add a replica, when to drain one.

An :class:`AutoscalerPolicy` is pure decision logic — given the fleet's
observed utilization and queue depth it returns a desired replica
count; the :class:`~repro.fleet.simulator.FleetSimulator` turns the
delta into timed provision/drain events.  Keeping the policy pure makes
it lintable (the A rules judge the *parameters*: hysteresis band,
cooldown, bounds, drain behaviour) and makes the decision trivially
deterministic.

Two dynamic variants plus a static baseline:

* ``target-utilization`` — track a busy-slot fraction: above ``target``
  add capacity, below ``down_target`` (the hysteresis floor) remove it.
* ``queue-depth`` — track waiting work: more than ``target`` queued
  requests per active replica adds capacity; an empty queue on an
  under-utilized fleet removes it.
* ``static`` — ``min_replicas == max_replicas``, never scales.  The
  capacity planner sweeps these as the provisioning baselines the
  autoscalers must beat on cost.

``BROKEN_AUTOSCALER_POLICIES`` are deliberately mis-configured fixtures
mapped to the A-rule ids they must trip — the same reconciliation
discipline as ``BROKEN_RECOVERY_POLICIES`` (R family).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "AUTOSCALER_MODES",
    "AutoscalerPolicy",
    "static_policy",
    "AUTOSCALER_POLICIES",
    "BROKEN_AUTOSCALER_POLICIES",
    "get_autoscaler_policy",
]

AUTOSCALER_MODES: Tuple[str, ...] = (
    "static",
    "target-utilization",
    "queue-depth",
)


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Parameters of one scaling loop."""

    name: str
    mode: str = "target-utilization"
    #: Fleet-size bounds.  ``max_replicas=None`` means unbounded — legal
    #: to construct, but lint rule A003 flags the unbounded bill.
    min_replicas: int = 2
    max_replicas: Optional[int] = 4
    #: Scale-up trigger: utilization fraction (target-utilization) or
    #: queued requests per active replica (queue-depth).
    target: float = 0.5
    #: Hysteresis floor — scale down only below this.  A floor at or
    #: above ``target`` leaves no dead band and flaps (rule A001).
    down_target: float = 0.2
    #: Replicas added/removed per decision.
    scale_step: int = 1
    #: Minimum seconds between scale decisions (A001 when <= 0).
    cooldown_s: float = 1.0
    #: Seconds between policy evaluations.
    interval_s: float = 0.25
    #: Scale-down behaviour: True aborts in-flight requests instead of
    #: draining (rule A002 — data loss by configuration).
    kill_in_flight: bool = False
    #: Ship session KV prefixes to a survivor on drain; False recomputes
    #: every drained session's history from scratch (rule A004).
    migrate_kv: bool = True

    def __post_init__(self) -> None:
        if self.mode not in AUTOSCALER_MODES:
            raise ValueError(
                f"unknown autoscaler mode {self.mode!r}; "
                f"pick one of {AUTOSCALER_MODES}"
            )
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if (
            self.max_replicas is not None
            and self.max_replicas < self.min_replicas
        ):
            raise ValueError("max_replicas cannot be below min_replicas")
        if self.target <= 0 or self.down_target < 0:
            raise ValueError("targets must be positive")
        if self.scale_step < 1:
            raise ValueError("scale_step must be at least 1")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.mode == "static" and self.max_replicas != self.min_replicas:
            raise ValueError(
                "a static policy needs min_replicas == max_replicas"
            )

    # ---- decision --------------------------------------------------------------------

    def bounded(self, n: int) -> int:
        lo = self.min_replicas
        hi = self.max_replicas if self.max_replicas is not None else n
        return max(lo, min(n, max(lo, hi)))

    def desired_replicas(
        self, count: int, utilization: float, queue_depth: int
    ) -> int:
        """Desired fleet size given ``count`` current replicas (active +
        booting), the active busy-slot fraction, and total queued work.
        Pure: same inputs, same answer."""
        if self.mode == "static":
            return self.min_replicas
        if count < self.min_replicas:
            # Below the floor (crash healing): rebuild first.
            return self.min_replicas
        if self.mode == "target-utilization":
            up = utilization > self.target
            down = utilization < self.down_target and queue_depth == 0
        else:  # queue-depth
            per_replica = queue_depth / count if count else math.inf
            up = per_replica > self.target
            down = queue_depth == 0 and utilization < self.down_target
        if up:
            return self.bounded(count + self.scale_step)
        if down:
            return self.bounded(count - self.scale_step)
        return self.bounded(count)


def static_policy(n: int, name: Optional[str] = None) -> AutoscalerPolicy:
    """Fixed provisioning at ``n`` replicas — the planner's baselines."""
    return AutoscalerPolicy(
        name=name if name is not None else f"static-{n}",
        mode="static",
        min_replicas=n,
        max_replicas=n,
    )


#: Sane builtin policies: clean under ``repro lint --fleet`` and swept
#: by the capacity planner.  Dynamic minimums sit at 2 so the chaos-mix
#: fault arm (which targets gpu0/gpu1) always finds its pools.
AUTOSCALER_POLICIES: Dict[str, AutoscalerPolicy] = {
    "target-util": AutoscalerPolicy(name="target-util"),
    "queue-depth": AutoscalerPolicy(
        name="queue-depth", mode="queue-depth", target=2.0
    ),
    "static-2": static_policy(2),
    "static-3": static_policy(3),
    "static-4": static_policy(4),
}

#: Deliberately broken fixtures → the A rules each must trip.
BROKEN_AUTOSCALER_POLICIES: Dict[
    str, Tuple[AutoscalerPolicy, Tuple[str, ...]]
] = {
    # No cooldown AND no hysteresis band: every evaluation may reverse
    # the previous one — textbook flapping.
    "flappy": (
        AutoscalerPolicy(
            name="flappy",
            cooldown_s=0.0,
            target=0.5,
            down_target=0.5,
        ),
        ("A001",),
    ),
    # Scale-down that aborts in-flight requests: configured data loss.
    "reaper": (
        AutoscalerPolicy(name="reaper", kill_in_flight=True),
        ("A002",),
    ),
    # No replica ceiling: a traffic spike writes a blank check.
    "land-grab": (
        AutoscalerPolicy(name="land-grab", max_replicas=None),
        ("A003",),
    ),
    # Drains politely but throws the session KV away: every surviving
    # session re-prefills its whole history.
    "amnesiac": (
        AutoscalerPolicy(name="amnesiac", migrate_kv=False),
        ("A004",),
    ),
}


def get_autoscaler_policy(name: str) -> AutoscalerPolicy:
    try:
        return AUTOSCALER_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown autoscaler policy {name!r}; "
            f"builtin: {sorted(AUTOSCALER_POLICIES)}"
        ) from None
