"""The capacity planner: policy × replica-mix sweep → Pareto frontier.

``repro fleet`` answers the question the paper's kernel-level savings
ultimately feed: *how much deployed hardware does a traffic curve
actually need?*  The planner runs one pinned workload through every
policy under comparison — static provisioning baselines and the
dynamic autoscalers — and places each run on a cost-vs-goodput plane:

* **cost** — integrated replica-hours × $/GPU-hour (booting and
  draining replicas bill too; that lag is the price of elasticity);
* **goodput** — completed output tokens per second, with
  ``slo_attainment`` (turns completed within the TTFT SLO) as the
  quality-of-service axis static provisioning is judged on.

The frontier is the non-dominated set; ``dominates`` names, for every
dynamic policy, the static baselines it beats outright (strictly lower
cost, equal-or-better goodput SLO and availability) — the claim the
``ext_fleet`` bench and the CI fleet job assert under the chaos-mix
fault plan.

Everything is a pure function of (fleet, profile, policy set, fault
plan, seed): :func:`fleet_report_json` serialises with sorted keys and
pinned rounding, so two runs diff byte-identically (``cmp`` in CI).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..runtime import builtin_fault_plans, get_recovery_policy
from .autoscaler import AUTOSCALER_POLICIES, AutoscalerPolicy
from .simulator import SLO_TTFT_S, FleetOutcome, FleetSimulator
from .spec import FleetSpec, builtin_fleet_specs
from .traffic import TrafficProfile, builtin_traffic_profiles, generate_sessions

__all__ = [
    "FleetConfig",
    "run_fleet_policy",
    "pareto_frontier",
    "fleet_report",
    "fleet_report_json",
]

#: Sweep order: baselines first, then the dynamic policies.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "static-2",
    "static-3",
    "static-4",
    "target-util",
    "queue-depth",
)


@dataclass(frozen=True)
class FleetConfig:
    """One planner scenario: fleet + traffic + policy set (+ faults)."""

    fleet: str = "consumer-mix"
    profile: str = "diurnal"
    policies: Tuple[str, ...] = DEFAULT_POLICIES
    recovery: str = "reroute"
    #: None = fault-free; a builtin plan name injects faults mid-run.
    fault_plan: Optional[str] = None
    #: Traffic seed override (None = the profile's pinned seed).
    seed: Optional[int] = None
    quick: bool = False

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("sweep needs at least one policy")
        for name in self.policies:
            if name not in AUTOSCALER_POLICIES:
                raise KeyError(
                    f"unknown autoscaler policy {name!r}; "
                    f"builtin: {sorted(AUTOSCALER_POLICIES)}"
                )

    def fleet_spec(self) -> FleetSpec:
        return builtin_fleet_specs()[self.fleet]

    def traffic(self) -> TrafficProfile:
        profile = builtin_traffic_profiles()[self.profile]
        if self.seed is not None:
            profile = replace(profile, seed=self.seed)
        if self.quick:
            profile = profile.quick()
        return profile


def run_fleet_policy(
    cfg: FleetConfig,
    policy: AutoscalerPolicy,
    loop=None,
) -> FleetOutcome:
    """Run the scenario's pinned workload through one policy."""
    profile = cfg.traffic()
    plan = (
        builtin_fault_plans()[cfg.fault_plan]
        if cfg.fault_plan is not None
        else None
    )
    sim = FleetSimulator(
        cfg.fleet_spec(),
        policy,
        get_recovery_policy(cfg.recovery),
        fault_plan=plan,
        horizon_s=profile.horizon_s,
        loop=loop,
    )
    return sim.run(generate_sessions(profile))


def pareto_frontier(
    points: Dict[str, Tuple[float, float]],
) -> List[str]:
    """Names whose (cost, goodput) no other point dominates.  ``a``
    dominates ``b`` when it is no worse on both axes (cost lower-or-
    equal, goodput higher-or-equal) and strictly better on one."""
    names = sorted(points)
    front = []
    for name in names:
        cost, good = points[name]
        dominated = any(
            (points[o][0] <= cost and points[o][1] >= good)
            and (points[o][0] < cost or points[o][1] > good)
            for o in names
            if o != name
        )
        if not dominated:
            front.append(name)
    return front


def _outcome_dict(outcome: FleetOutcome) -> Dict:
    stats = outcome.stats
    peak, trough = outcome.replica_extremes()
    trace_digest = hashlib.sha256(
        repr(stats.trace.event_log()).encode()
    ).hexdigest()
    by_class: Dict[str, float] = {}
    for r in outcome.replicas:
        seconds = max(
            0.0, r.billed_until(outcome.makespan_s) - r.up_s
        )
        by_class[r.cls.name] = by_class.get(r.cls.name, 0.0) + seconds
    return {
        "turns": {
            "submitted": outcome.turns_submitted,
            "completed": len(stats.completed),
            "rejected": len(stats.rejected),
            "failed": len(stats.failed),
            "shed": len(stats.shed),
            "timed_out": len(stats.timed_out),
            "cancelled": len(stats.cancelled),
        },
        "sessions": {
            "submitted": outcome.sessions_submitted,
            "completed": outcome.sessions_completed,
            "aborted": outcome.sessions_aborted,
        },
        "scaling": {
            "scale_ups": outcome.scale_ups,
            "scale_downs": outcome.scale_downs,
            "scale_denied": outcome.scale_denied,
            "drains": outcome.drains,
            "kills": outcome.kills,
            "peak_replicas": peak,
            "trough_replicas": trough,
            "replica_seconds_by_class": {
                k: round(v, 9) for k, v in sorted(by_class.items())
            },
        },
        "kv_migration": {
            "migrations": outcome.kv_migrations,
            "migrated_tokens": outcome.kv_migrated_tokens,
            "drops": outcome.kv_migration_drops,
            "leaked_blocks": outcome.prefix_leaked_blocks,
        },
        "cost": {
            "usd": round(outcome.cost_usd, 9),
            "replica_seconds": round(outcome.replica_seconds, 9),
            "usd_per_mtok": (
                round(outcome.cost_per_mtok, 9)
                if outcome.cost_per_mtok != float("inf")
                else None
            ),
        },
        "service": {
            "goodput_tokens_per_s": round(stats.goodput_tokens_per_s, 6),
            "availability": round(stats.availability, 6),
            "slo_ttft_s": SLO_TTFT_S,
            "slo_attainment": round(outcome.slo_attainment, 6),
            "makespan_s": round(outcome.makespan_s, 9),
            "faults": stats.faults,
            "retries": stats.retries,
            "preemptions": stats.preemptions,
        },
        "trace_sha256": trace_digest,
    }


def fleet_report(cfg: FleetConfig) -> Dict:
    """Deterministic JSON-ready sweep summary (``repro fleet --json``)."""
    profile = cfg.traffic()
    outcomes: Dict[str, FleetOutcome] = {}
    for name in cfg.policies:
        outcomes[name] = run_fleet_policy(cfg, AUTOSCALER_POLICIES[name])
    points = {
        name: (
            round(out.cost_usd, 9),
            round(out.stats.goodput_tokens_per_s, 6),
        )
        for name, out in outcomes.items()
    }
    frontier = pareto_frontier(points)
    statics = {
        n for n in outcomes if AUTOSCALER_POLICIES[n].mode == "static"
    }
    dominates: Dict[str, List[str]] = {}
    for name, out in sorted(outcomes.items()):
        if name in statics:
            continue
        beaten = [
            s
            for s in sorted(statics)
            if out.cost_usd < outcomes[s].cost_usd
            and out.slo_attainment >= outcomes[s].slo_attainment
            and out.stats.availability >= outcomes[s].stats.availability
        ]
        dominates[name] = beaten
    scale = profile.scale_factor()
    peak_by_policy = {
        name: out.replica_extremes()[0] for name, out in outcomes.items()
    }
    return {
        "scenario": {
            "fleet": cfg.fleet,
            "profile": cfg.profile,
            "recovery": cfg.recovery,
            "fault_plan": cfg.fault_plan,
            "seed": profile.seed,
            "quick": cfg.quick,
            "policies": list(cfg.policies),
        },
        "traffic": {
            "shape": profile.shape,
            "horizon_s": profile.horizon_s,
            "base_rate": profile.base_rate,
            "peak_rate": profile.peak_rate,
            "mean_rate": round(profile.mean_rate(), 6),
            "sessions": len(generate_sessions(profile)),
            "modeled_users": profile.modeled_users,
            "scale_factor": round(scale, 6),
        },
        "policies": {
            name: _outcome_dict(out)
            for name, out in sorted(outcomes.items())
        },
        "pareto_frontier": frontier,
        "dominates": dominates,
        "fleet_scale": {
            # The simulated workload is a 1-in-scale_factor sample of
            # the modeled population: extrapolated peak fleet size and
            # $/hour at peak, per policy.
            name: {
                "peak_replicas": round(peak_by_policy[name] * scale, 1),
                "usd_per_hour_at_peak": round(
                    sum(
                        sorted(
                            r.cls.hourly_cost
                            for r in outcomes[name].replicas
                        )[: peak_by_policy[name]]
                    )
                    * scale,
                    2,
                ),
            }
            for name in sorted(outcomes)
        },
    }


def fleet_report_json(cfg: FleetConfig) -> str:
    """Byte-stable serialisation: sorted keys, pinned rounding."""
    payload = {"schema": "repro-fleet/v1", "report": fleet_report(cfg)}
    return json.dumps(payload, indent=2, sort_keys=True)
