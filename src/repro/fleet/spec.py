"""Fleet composition: heterogeneous replica classes with a cost model.

A :class:`ReplicaClass` is "one way to build a replica" — GPU model,
serving knobs, dollar cost per hour, and how long a fresh instance
takes to boot.  A :class:`FleetSpec` is the menu of classes the
autoscaler may provision from; it scales up cheapest-class-first and
retires priciest-first, so a heterogeneous fleet drifts toward the
cheapest mix that still meets the load.

Every class lowers to a :class:`~repro.analysis.deploy_model.DeploymentSpec`
(:meth:`ReplicaClass.deployment_spec`), which the A-family lint sweep
feeds through the existing M/T/K/O/D deployment rules — a fleet built
from classes that would OOM or violate sharding is rejected before a
single simulated dollar is spent.

Prices are pinned constants (USD per GPU-hour, on-demand cloud rental
ballpark circa the paper's testbeds).  They are inputs to a
deterministic cost model, not market data: what matters is that the
relative order (RTX4090 < A6000 < A100 < H100) is right and every run
prices identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.deploy_model import DeploymentSpec

__all__ = [
    "GPU_COST_PER_HOUR",
    "ReplicaClass",
    "FleetSpec",
    "builtin_fleet_specs",
]

#: USD per GPU-hour.  Pinned: the cost model must replay byte-identically.
GPU_COST_PER_HOUR: Dict[str, float] = {
    "RTX3090": 0.22,
    "RTX4090": 0.44,
    "A6000": 0.79,
    "A100_SXM": 1.89,
    "H100_PCIE": 2.49,
}


@dataclass(frozen=True)
class ReplicaClass:
    """One provisionable replica flavour."""

    name: str
    gpu: str = "RTX4090"
    model: str = "opt-13b"
    framework: str = "spinfer"
    max_batch: int = 4
    kv_cap_tokens: Optional[int] = 8192
    #: Override the pinned per-GPU price (None = table lookup).
    cost_per_hour: Optional[float] = None
    #: Boot time of a fresh instance — the scale-up lag the planner
    #: charges against reactive policies.
    provision_s: float = 0.4
    #: Hard ceiling on simultaneous replicas of this class.
    max_replicas: int = 6
    #: Shape assumed when validating the class as a deployment.
    prompt_len: int = 256
    output_len: int = 64

    def __post_init__(self) -> None:
        if self.max_batch <= 0 or self.max_replicas <= 0:
            raise ValueError("max_batch and max_replicas must be positive")
        if self.provision_s < 0:
            raise ValueError("provision time cannot be negative")
        if self.cost_per_hour is None and self.gpu not in GPU_COST_PER_HOUR:
            raise KeyError(
                f"no pinned price for GPU {self.gpu!r}; "
                f"set cost_per_hour explicitly"
            )
        if self.cost_per_hour is not None and self.cost_per_hour <= 0:
            raise ValueError("cost_per_hour must be positive")

    @property
    def hourly_cost(self) -> float:
        if self.cost_per_hour is not None:
            return self.cost_per_hour
        return GPU_COST_PER_HOUR[self.gpu]

    def deployment_spec(self) -> DeploymentSpec:
        """The class as a single-GPU deployment, for M/T/K/O/D lint."""
        return DeploymentSpec(
            model=self.model,
            framework=self.framework,
            gpu=self.gpu,
            num_gpus=1,
            batch_size=self.max_batch,
            prompt_len=self.prompt_len,
            output_len=self.output_len,
        )


@dataclass(frozen=True)
class FleetSpec:
    """The menu of replica classes one fleet may provision from."""

    name: str
    classes: Tuple[ReplicaClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a fleet needs at least one replica class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError("replica class names must be unique")

    def by_cost(self) -> Tuple[ReplicaClass, ...]:
        """Classes cheapest-first (name breaks price ties) — the
        scale-up provisioning order."""
        return tuple(
            sorted(self.classes, key=lambda c: (c.hourly_cost, c.name))
        )

    @property
    def max_replicas(self) -> int:
        """Hard fleet-wide ceiling implied by the per-class caps."""
        return sum(c.max_replicas for c in self.classes)


def builtin_fleet_specs() -> Dict[str, FleetSpec]:
    """Pinned fleets used by ``repro fleet``, the bench and the lint
    sweep.  ``consumer-mix`` mirrors the paper's two testbeds: cheap
    PCIe RTX4090 boxes as the elastic tier, NVLinked A6000s as the
    pricier overflow tier."""
    rtx4090 = ReplicaClass(name="rtx4090", gpu="RTX4090")
    a6000 = ReplicaClass(name="a6000", gpu="A6000", max_replicas=4)
    return {
        "consumer-mix": FleetSpec(
            name="consumer-mix", classes=(rtx4090, a6000)
        ),
        "rtx4090-only": FleetSpec(name="rtx4090-only", classes=(rtx4090,)),
    }
