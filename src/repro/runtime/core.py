"""Discrete-event loop and per-GPU resource model.

The runtime's core is deliberately small: an :class:`EventLoop` with an
explicit clock and a deterministic event queue, plus a :class:`GPUPool`
that bundles what a scheduler may consume on one GPU group — an
:class:`~repro.llm.inference.InferenceEngine` for iteration costs and a
:class:`~repro.llm.kv_cache.KVBlockAllocator` as the *single* source of
KV-memory truth.  Schedulers (:mod:`repro.runtime.scheduler`) are
policies layered on top; they own no clock and no memory arithmetic of
their own.

Determinism contract: events fire in ``(time, phase, insertion order)``
order.  Ties on the clock are broken first by *phase* — :meth:`EventLoop.
defer` schedules at phase 1, guaranteed after every ordinarily-scheduled
(phase 0) event at the same instant — and then by a monotone sequence
number, never by object identity or hash order, so the same inputs
always replay the same schedule.  The phase makes the "defer behind this
instant" idiom (admission kicks that must see every simultaneous
arrival) independent of insertion tie-breaking: the H-family schedule
linter (:mod:`repro.analysis.schedule_lint`) replays loops with the
insertion tie-break reversed (``tie_break="lifo"``) and requires the
observable trace to be unchanged.  Cancellation (``cancel(handle)``)
removes an event's callback without disturbing the sequence numbering,
so a run with cancelled events replays exactly like a run where they
were never scheduled.

An :class:`EventLoop` optionally carries an ``observer`` (see
:class:`~repro.runtime.schedule_log.ScheduleRecorder`) notified on every
schedule/cancel/dispatch — the hook the happens-before analysis records
its schedule log through.  With no observer the hooks are two attribute
checks per event.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

from ..llm.inference import InferenceEngine, PhaseBreakdown
from ..llm.kv_cache import KVBlockAllocator
from ..llm.memory import kv_bytes_per_token

__all__ = ["EventLoop", "GPUPool", "det_hash01"]

#: Hard ceiling on dispatched events — a runaway-schedule backstop far
#: above any legitimate simulation (the legacy simulator's infinite
#: admission spin is exactly the failure mode this bounds).
MAX_EVENTS = 5_000_000


def det_hash01(key: int, salt: int) -> float:
    """Deterministic pseudo-uniform in [0, 1): an integer hash of
    ``(key, salt)``.  Runtime randomness (backoff jitter, silent-fault
    corruption draws) must NOT consume a shared RNG — the value one
    draw sees would then depend on the order every other draw happened,
    and replays would diverge under refactoring."""
    x = (key * 2654435761 + salt * 40503 + 0x9E3779B9) % (1 << 32)
    x ^= x >> 16
    x = (x * 0x45D9F3B) % (1 << 32)
    x ^= x >> 16
    return x / float(1 << 32)


class EventLoop:
    """Explicit-clock event queue with deterministic tie-breaking.

    ``tie_break`` controls how equal ``(time, phase)`` events order:
    ``"fifo"`` (default, insertion order) or ``"lifo"`` (reverse
    insertion order).  LIFO exists purely for the H002 dual-replay
    check — any schedule whose *observable* behaviour differs between
    the two orderings has a race hiding behind the insertion tie-break.
    """

    def __init__(self, tie_break: str = "fifo") -> None:
        if tie_break not in ("fifo", "lifo"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.now = 0.0
        self.tie_break = tie_break
        self._heap: List[Tuple[float, int, int]] = []
        self._callbacks: Dict[int, Callable[[], None]] = {}
        self._seq = 0
        self.dispatched = 0
        self.cancelled = 0
        #: Optional schedule observer (duck-typed; see
        #: :class:`~repro.runtime.schedule_log.ScheduleRecorder`).
        self.observer = None
        #: Handle currently being dispatched (parent attribution for
        #: the happens-before graph), or None outside :meth:`run`.
        self._dispatching: Optional[int] = None

    def _push(
        self, time: float, callback: Callable[[], None], phase: int
    ) -> int:
        handle = self._seq
        key = handle if self.tie_break == "fifo" else -handle
        heapq.heappush(self._heap, (time, phase, key))
        self._callbacks[handle] = callback
        self._seq += 1
        if self.observer is not None:
            self.observer.on_schedule(handle, time, phase, self._dispatching)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` when the clock reaches ``time``.

        Returns a cancellation handle for :meth:`cancel`.
        """
        if not math.isfinite(time):
            raise ValueError(
                f"cannot schedule at non-finite time {time!r} — NaN/inf "
                "silently corrupt heap ordering"
            )
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before now={self.now}"
            )
        return self._push(time, callback, phase=0)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> int:
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.schedule_at(self.now + delay, callback)

    def defer(self, callback: Callable[[], None]) -> int:
        """Run ``callback`` at the current instant, *after* every
        ordinarily-scheduled event at this timestamp.

        This is the first-class form of the old ``schedule_at(now, cb)``
        idiom (admission kicks that must observe every simultaneous
        arrival).  Phase 1 ordering makes the guarantee independent of
        insertion tie-breaking, so deferred work commutes under the
        H002 dual replay instead of racing with phase-0 events.
        """
        return self._push(self.now, callback, phase=1)

    def cancel(self, handle: int) -> bool:
        """Cancel a pending event; returns True if it was still pending.

        Cancelling never perturbs the ``(time, phase, seq)`` ordering of
        the surviving events — the heap entry stays in place and is
        skipped at pop time, so determinism is preserved (timeout
        machinery in the fault-tolerant schedulers depends on this).
        """
        pending = self._callbacks.pop(handle, None) is not None
        if self.observer is not None:
            # Stale cancels are reported too: H004 audits them.
            self.observer.on_cancel(handle, pending)
        if not pending:
            return False
        self.cancelled += 1
        return True

    @property
    def pending_events(self) -> int:
        return len(self._callbacks)

    def run(self, max_events: int = MAX_EVENTS) -> None:
        """Dispatch events until the queue drains."""
        while self._heap:
            if self.dispatched >= max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exhausted at "
                    f"t={self.now:.3f}s — the schedule is not making "
                    "progress (likely a policy that re-enqueues without "
                    "advancing the clock)"
                )
            time, _phase, key = heapq.heappop(self._heap)
            handle = key if self.tie_break == "fifo" else -key
            callback = self._callbacks.pop(handle, None)
            if callback is None:
                continue  # cancelled; never fires, never advances the clock
            self.now = time
            self.dispatched += 1
            self._dispatching = handle
            if self.observer is not None:
                self.observer.on_dispatch(handle, time)
            try:
                callback()
            finally:
                self._dispatching = None
                if self.observer is not None:
                    self.observer.on_dispatch_done(handle)


class GPUPool:
    """One GPU group's resources: a cost model plus a paged KV pool.

    The allocator is sized from the DRAM budget left after weights
    (``kv_budget_bytes / (block_size * kv_bytes_per_token)`` blocks)
    unless ``total_blocks`` overrides it — disaggregated simulations use
    the override to model pools whose feasibility is the *linter's*
    verdict (rules D001/D002), not a runtime crash.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        kv_budget_bytes: float,
        block_size: int = 16,
        max_batch: int = 32,
        name: str = "gpu0",
        total_blocks: Optional[int] = None,
    ) -> None:
        if block_size <= 0 or max_batch <= 0:
            raise ValueError("block_size and max_batch must be positive")
        self.engine = engine
        self.name = name
        self.max_batch = max_batch
        self.block_size = block_size
        self.kv_budget_bytes = kv_budget_bytes
        self.kv_per_token = kv_bytes_per_token(
            engine.model, engine.config.num_gpus
        )
        if total_blocks is None:
            total_blocks = int(
                kv_budget_bytes // (block_size * self.kv_per_token)
            )
        if total_blocks <= 0:
            raise ValueError(
                f"pool {name!r} has no KV blocks: budget "
                f"{kv_budget_bytes / 1e9:.2f} GB at "
                f"{self.kv_per_token / 1e6:.2f} MB/token"
            )
        self.allocator = KVBlockAllocator(
            total_blocks=total_blocks, block_size=block_size
        )
        #: True when the pool was sized past its DRAM budget (override).
        self.oversubscribed = (
            total_blocks * block_size * self.kv_per_token > kv_budget_bytes
        )
        #: Fault state: a crashed pool stops serving; a straggling pool
        #: multiplies every iteration cost until it recovers.
        self.alive = True
        self.slowdown = 1.0

    # ---- fault surface ---------------------------------------------------------------

    def fail(self) -> None:
        """Mark the pool crashed.  The KV it held is gone; the scheduler
        on top is responsible for freeing the bookkeeping and failing or
        re-routing its sequences."""
        self.alive = False

    def set_slowdown(self, factor: float) -> None:
        """Multiply iteration costs by ``factor`` (straggler model).
        ``1.0`` restores nominal speed."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.slowdown = factor

    # ---- capacity ------------------------------------------------------------------

    def blocks_for(self, tokens: int) -> int:
        return self.allocator.blocks_needed(tokens)

    def fits_at_all(self, tokens: int) -> bool:
        """Whether a sequence of ``tokens`` could EVER hold its KV here.

        The admission-safety rule that kills the legacy infinite loop: a
        request failing this check is rejected at arrival instead of
        parking in the waiting queue forever.
        """
        return self.blocks_for(tokens) <= self.allocator.total_blocks

    # ---- iteration costs -------------------------------------------------------------

    def decode_step(self, batch: int, avg_context: float) -> PhaseBreakdown:
        step = self.engine.decode_step_seconds(batch, avg_context)
        if self.slowdown != 1.0:
            step = step.scaled(self.slowdown)
        return step

    def prefill_tokens_seconds(self, tokens: int) -> float:
        seconds = self.engine.prefill_tokens_seconds(tokens)
        if self.slowdown != 1.0:
            seconds *= self.slowdown
        return seconds

    def prefill_breakdown(self, batch: int, prompt_len: int) -> PhaseBreakdown:
        phase = self.engine.prefill_breakdown(batch, prompt_len)
        if self.slowdown != 1.0:
            phase = phase.scaled(self.slowdown)
        return phase
