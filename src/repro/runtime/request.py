"""The unified request lifecycle model.

Historically every layer carried its own slice of the request model:
``llm/serving.py`` owned the dataclass, the scheduler re-derived
``prompt + generated`` prefill targets inline, the fault router tracked
attempts on the side, and disaggregation re-imported the serving class
for what is really a runtime concept.  This module is the single home:

* :class:`SessionRequest` — one generation request, optionally part of
  a multi-turn *session*.  The one-shot fields (and their order) are
  exactly the legacy ``Request``'s, so positional construction and the
  perf suite's field resets keep working; ``Request`` remains available
  as an alias from :mod:`repro.llm.serving`.  Session fields default to
  "not a session" and change nothing unless a server layer sets them.
* :class:`TokenEvent` — one streamed decode token, emitted by the
  scheduler and flushed at end-of-instant through
  :meth:`~repro.runtime.core.EventLoop.defer`.
* :class:`TokenStream` — the deterministic per-token event log a
  serving front-end subscribes to.  Buffered events flush once per
  instant in ``(request_id, index)`` order, so the stream is invariant
  under the event loop's insertion tie-break (the H002 contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["SessionRequest", "TokenEvent", "TokenStream"]


@dataclass
class SessionRequest:
    """One generation request, one-shot or one turn of a session."""

    request_id: int
    arrival_s: float
    prompt_len: int
    output_len: int
    # Filled by the runtime:
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    first_token_s: Optional[float] = None
    generated: int = 0
    # ---- session lifecycle (defaults = a plain one-shot request) ------
    #: Session this request belongs to; None = one-shot.
    session_id: Optional[int] = None
    #: Zero-based turn index within the session.
    turn: int = 0
    #: Billing/quota principal for per-tenant admission control.
    tenant: str = "default"
    #: Priority tier: 0 is most urgent; ties broken by arrival order.
    priority: int = 0
    #: Prompt tokens whose KV already lives in a shared session prefix
    #: (set by the session manager when a prefix fork is available) —
    #: the scheduler skips re-prefilling them.
    cached_tokens: int = 0
    #: Ground truth from the fault layer: at least one served token was
    #: produced from silently corrupted weights/results/KV.  Only the
    #: simulator can see this flag — a real server cannot — which is
    #: exactly what makes silent corruption silent; the integrity layer
    #: exists so that no completed request ever carries it.
    corrupted: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.cached_tokens <= self.prompt_len:
            raise ValueError(
                f"cached_tokens={self.cached_tokens} outside "
                f"[0, prompt_len={self.prompt_len}]"
            )
        if self.priority < 0:
            raise ValueError("priority tier cannot be negative")

    # ---- derived token arithmetic (the shared lifecycle math) ---------

    @property
    def total_tokens(self) -> int:
        """Worst-case KV footprint in tokens (admission screening)."""
        return self.prompt_len + self.output_len

    @property
    def prefill_target(self) -> int:
        """Tokens that must be resident before decode: the prompt plus
        anything already generated (vLLM's recompute discipline after
        preemption or crash reroute re-prefills both)."""
        return self.prompt_len + self.generated

    @property
    def remaining_output(self) -> int:
        return self.output_len - self.generated

    # ---- latency metrics ----------------------------------------------

    @property
    def latency_s(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def queue_s(self) -> Optional[float]:
        if self.start_s is None:
            return None
        return self.start_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token — the interactive-latency metric chunked
        prefill (and session prefix reuse) exist to improve."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s


@dataclass(frozen=True)
class TokenEvent:
    """One streamed decode token."""

    t: float
    request_id: int
    #: Zero-based token index within the request's output.
    index: int
    pool: str
    session_id: Optional[int] = None
    #: True on the request's last output token.
    final: bool = False

    def key(self) -> tuple:
        """Canonical comparison key (replay-identity tests)."""
        return (
            self.t, self.request_id, self.index, self.pool,
            self.session_id, self.final,
        )


class TokenStream:
    """Deterministic end-of-instant token flusher.

    Schedulers :meth:`push` events as decode iterations land; the first
    push of an instant arms one :meth:`~repro.runtime.core.EventLoop.
    defer` flush, which appends the instant's events to :attr:`events`
    sorted by ``(request_id, index)`` — NOT by which pool's iteration
    dispatched first — so the observable stream commutes under the H002
    dual replay even when several replicas finish iterations at the
    same timestamp.
    """

    def __init__(self, subscriber: Optional[Callable] = None) -> None:
        #: The flushed, ordered stream (the server's observable output).
        self.events: List[TokenEvent] = []
        #: Optional per-event callback, invoked at flush time.
        self.subscriber = subscriber
        self._buffer: List[TokenEvent] = []
        self._armed = False
        self.flushes = 0

    def push(self, loop, event: TokenEvent) -> None:
        self._buffer.append(event)
        if not self._armed:
            self._armed = True
            loop.defer(self._flush)

    def _flush(self) -> None:
        self._armed = False
        batch = sorted(
            self._buffer, key=lambda e: (e.request_id, e.index)
        )
        self._buffer.clear()
        self.flushes += 1
        self.events.extend(batch)
        if self.subscriber is not None:
            for event in batch:
                self.subscriber(event)

    def for_request(self, request_id: int) -> List[TokenEvent]:
        return [e for e in self.events if e.request_id == request_id]

    def keys(self) -> List[tuple]:
        """The stream's canonical content (byte-identity comparisons)."""
        return [e.key() for e in self.events]
