"""Admission-ordering policies for the waiting queue.

The legacy simulator kept pending requests in a sorted list and, every
iteration, rebuilt ``[r for r in pending if r.arrival_s <= now]`` and
called ``pending.remove(nxt)`` — O(n²) over the trace.  These policies
replace that with the standard two-heap pattern: a *future* heap keyed
on arrival time feeds a *ready* heap keyed on the policy's priority as
the clock passes each arrival.  Push, release and pop are all
O(log n); ties break on a monotone insertion counter so ordering never
depends on object identity.

Preempted sequences are re-pushed with their original key: under FCFS
their early arrival time puts them near the front (vLLM's recompute
requeue discipline); under SJF their *remaining* work re-ranks them.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

__all__ = ["AdmissionPolicy", "FCFSPolicy", "SJFPolicy", "POLICIES", "get_policy"]


class AdmissionPolicy:
    """Two-heap waiting queue; subclasses define the ready-heap key."""

    name = "base"

    def __init__(self) -> None:
        self._future: List[Tuple[float, int, object]] = []
        self._ready: List[Tuple[Tuple, int, object]] = []
        self._counter = 0

    def _key(self, request) -> Tuple:
        raise NotImplementedError

    def push(self, request) -> None:
        """Enqueue a request (fresh arrival or preempted requeue)."""
        entry = (request.arrival_s, self._counter, request)
        self._counter += 1
        heapq.heappush(self._future, entry)

    def release(self, now: float) -> None:
        """Move every request with ``arrival_s <= now`` to the ready heap."""
        while self._future and self._future[0][0] <= now:
            _, _, request = heapq.heappop(self._future)
            heapq.heappush(
                self._ready, (self._key(request), self._counter, request)
            )
            self._counter += 1

    def peek_ready(self, now: float):
        """Highest-priority admissible request, without removing it."""
        self.release(now)
        return self._ready[0][2] if self._ready else None

    def pop_ready(self, now: float):
        self.release(now)
        if not self._ready:
            return None
        return heapq.heappop(self._ready)[2]

    def remove(self, request_id: int):
        """Drop a waiting request by id (timeout/cancellation eviction).

        Returns the removed request, or None when it is not queued
        here.  Re-heapifying after the removal does not perturb pop
        order: keys are untouched and every key is unique (the monotone
        counter breaks ties), so the remaining requests pop in exactly
        the order they would have anyway.
        """
        for heap in (self._future, self._ready):
            for i, entry in enumerate(heap):
                if entry[2].request_id == request_id:
                    heap[i] = heap[-1]
                    heap.pop()
                    heapq.heapify(heap)
                    return entry[2]
        return None

    def next_arrival(self) -> Optional[float]:
        """Earliest future arrival time, or None when only ready work
        (or nothing) remains."""
        return self._future[0][0] if self._future else None

    def __len__(self) -> int:
        return len(self._future) + len(self._ready)

    def __bool__(self) -> bool:
        return len(self) > 0


class FCFSPolicy(AdmissionPolicy):
    """First-come-first-served: ready heap ordered by arrival time."""

    name = "fcfs"

    def _key(self, request) -> Tuple:
        return (request.arrival_s,)


class SJFPolicy(AdmissionPolicy):
    """Shortest-job-first over *remaining* output tokens.

    Trades fairness for mean latency; remaining (not total) length keeps
    preempted-and-requeued sequences honestly ranked.
    """

    name = "sjf"

    def _key(self, request) -> Tuple:
        remaining = request.output_len - getattr(request, "generated", 0)
        return (remaining, request.arrival_s)


POLICIES = {"fcfs": FCFSPolicy, "sjf": SJFPolicy}


def get_policy(name: str) -> AdmissionPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
