"""Schedule logging for the happens-before analysis.

A :class:`ScheduleRecorder` attaches to an :class:`~repro.runtime.core.
EventLoop` as its ``observer`` and records one :class:`ScheduleRecord`
per scheduled event: when it was scheduled and by whom (the dispatching
parent handle, giving causal ancestry), when and in what order it fired,
and — via the attached :class:`~repro.runtime.trace.RuntimeTrace` — the
set of state locations its callback wrote.  Write-sets are derived from
the trace events a callback emits while it is the dispatching event
(:meth:`~repro.runtime.events.TraceEvent.write_keys`), a dynamic
over-approximation of the scheduler/allocator state it touched.

The resulting :class:`ScheduleLog` is the input to the H-family rules in
:mod:`repro.analysis.schedule_lint`: same-timestamp write-write pairs
ordered only by insertion tie-break (H001), time-travel and non-finite
fire times (H003), cancelled-handle reuse and stale cancels (H004), and
unbounded same-timestamp cascades (H005).  H002 — the semantic check —
does not read the log at all: it replays the whole scenario under the
reversed tie-break and diffs the observable trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["ScheduleRecord", "ScheduleLog", "ScheduleRecorder"]

#: A state location: ``(pool, seq_id)`` or the pool-wide ``(pool, "*")``.
WriteKey = Tuple[str, object]


@dataclass
class ScheduleRecord:
    """One event's lifetime on the loop."""

    handle: int
    fire_t: float
    scheduled_t: float
    phase: int
    #: Handle of the event whose dispatch scheduled this one (causal
    #: parent), or None when scheduled from outside the loop (setup).
    parent: Optional[int]
    #: Position in dispatch order, or None if never dispatched
    #: (cancelled, or still pending when the loop drained).
    dispatch_index: Optional[int] = None
    cancelled: bool = False
    #: State locations written during this event's dispatch.
    writes: FrozenSet[WriteKey] = frozenset()
    #: Trace-event kinds emitted during dispatch (diagnostic labels).
    kinds: Tuple[str, ...] = ()
    #: ``[start, end)`` slice of the attached trace's event list emitted
    #: during this dispatch — the plan compiler's lowering input.
    trace_span: Tuple[int, int] = (0, 0)

    @property
    def dispatched(self) -> bool:
        return self.dispatch_index is not None

    def to_dict(self) -> Dict:
        return {
            "handle": self.handle,
            "fire_t": self.fire_t,
            "scheduled_t": self.scheduled_t,
            "phase": self.phase,
            "parent": self.parent,
            "dispatch_index": self.dispatch_index,
            "cancelled": self.cancelled,
            "writes": sorted(str(w) for w in self.writes),
            "kinds": list(self.kinds),
            "trace_span": list(self.trace_span),
        }


@dataclass
class ScheduleLog:
    """Complete schedule record of one loop execution."""

    records: List[ScheduleRecord] = field(default_factory=list)
    #: Handles whose cancel arrived after they fired or were already
    #: cancelled — H004's subject.
    stale_cancels: List[int] = field(default_factory=list)

    def dispatched(self) -> List[ScheduleRecord]:
        out = [r for r in self.records if r.dispatched]
        out.sort(key=lambda r: r.dispatch_index)
        return out

    def record_for(self, handle: int) -> ScheduleRecord:
        for rec in self.records:
            if rec.handle == handle:
                return rec
        raise KeyError(f"no schedule record for handle {handle}")

    def ancestors(self, handle: int) -> Set[int]:
        """Causal ancestry via scheduled-by parent chains."""
        seen: Set[int] = set()
        by_handle = {r.handle: r for r in self.records}
        cur = by_handle.get(handle)
        while cur is not None and cur.parent is not None:
            if cur.parent in seen:  # defensive: parents are acyclic
                break
            seen.add(cur.parent)
            cur = by_handle.get(cur.parent)
        return seen

    def to_dict(self) -> Dict:
        return {
            "records": [r.to_dict() for r in self.records],
            "stale_cancels": list(self.stale_cancels),
        }


class ScheduleRecorder:
    """EventLoop observer that builds a :class:`ScheduleLog`.

    Attach before running::

        loop = EventLoop()
        recorder = ScheduleRecorder(loop)
        rt = FaultTolerantRuntime(..., loop=loop)
        recorder.set_trace(rt.trace)   # write-set attribution
        rt.run(requests)
        log = recorder.log

    ``set_trace`` may be called any time before the loop runs; without a
    trace the recorder still captures timing/causality (write-sets stay
    empty, so H001 has nothing to intersect but H003–H005 work fully).
    """

    def __init__(self, loop) -> None:
        self.log = ScheduleLog()
        self._loop = loop
        self._by_handle: Dict[int, ScheduleRecord] = {}
        self._trace = None
        self._mark = 0
        self._dispatch_count = 0
        self._current: Optional[ScheduleRecord] = None
        loop.observer = self

    def set_trace(self, trace) -> None:
        """Attach the :class:`RuntimeTrace` used for write-set
        attribution (events appended during a dispatch belong to it)."""
        self._trace = trace
        self._mark = len(trace.events)

    # ---- EventLoop observer hooks ----------------------------------------------------

    def on_schedule(
        self, handle: int, time: float, phase: int, parent: Optional[int]
    ) -> None:
        rec = ScheduleRecord(
            handle=handle,
            fire_t=time,
            scheduled_t=self._loop.now,
            phase=phase,
            parent=parent,
        )
        self.log.records.append(rec)
        self._by_handle[handle] = rec

    def on_cancel(self, handle: int, pending: bool) -> None:
        if pending:
            self._by_handle[handle].cancelled = True
        else:
            self.log.stale_cancels.append(handle)

    def on_dispatch(self, handle: int, time: float) -> None:
        rec = self._by_handle[handle]
        rec.dispatch_index = self._dispatch_count
        self._dispatch_count += 1
        rec.fire_t = time
        self._current = rec
        if self._trace is not None:
            self._mark = len(self._trace.events)

    def on_dispatch_done(self, handle: int) -> None:
        rec = self._current
        if rec is None or rec.handle != handle:
            rec = self._by_handle[handle]
        if self._trace is not None:
            end = len(self._trace.events)
            emitted = self._trace.events[self._mark : end]
            writes: Set[WriteKey] = set()
            for ev in emitted:
                writes.update(ev.write_keys())
            rec.writes = frozenset(writes)
            rec.kinds = tuple(ev.kind for ev in emitted)
            rec.trace_span = (self._mark, end)
            self._mark = end
        self._current = None
