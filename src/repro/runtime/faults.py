"""Deterministic fault injection and fault-tolerant serving.

The runtime built in :mod:`repro.runtime.scheduler` models a perfect
world; this module breaks it on purpose — reproducibly.  Three layers:

* **Fault plans** — a :class:`FaultPlan` is an immutable list of typed
  :class:`FaultEvent` records (GPU crash, transient kernel/ECC error,
  straggler slowdown with a recovery time, KV-migration failure,
  request cancellation).  Plans are either written explicitly or drawn
  from a pinned ``np.random.Generator`` seed, so every chaos run
  replays bit-identically: same plan + same workload + same recovery
  policy ⇒ same :class:`~repro.runtime.trace.RuntimeTrace`.
* **Injection** — a :class:`FaultInjector` schedules the plan's events
  on the target's :class:`~repro.runtime.core.EventLoop`.  Faults are
  ordinary loop events; they obey the same ``(time, seq)`` determinism
  contract as everything else.
* **Recovery** — a :class:`RecoveryPolicy` says what the serving layer
  does about it: fail fast, retry the same pool with exponential
  backoff (deterministic jitter, bounded budget), or reroute to a
  surviving pool and recompute the lost KV from the prompt.
  :class:`FaultTolerantRuntime` is the router that applies the policy
  across N single-pool replicas, owns per-request deadlines
  (cancellable loop events), and sheds load when capacity drops.

Backoff jitter never touches an RNG at run time: it is a pure integer
hash of ``(request_id, attempt)``, so the jitter a request sees cannot
depend on the order other requests failed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import EventLoop, GPUPool, det_hash01
from .events import EventKind
from .scheduler import (
    ContinuousBatchingScheduler,
    DisaggregatedRuntime,
    RuntimeStats,
)
from .trace import RuntimeTrace

__all__ = [
    "ALL_FAULT_KINDS",
    "SILENT_FAULT_KINDS",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "RecoveryPolicy",
    "RECOVERY_POLICIES",
    "BROKEN_RECOVERY_POLICIES",
    "FaultInjector",
    "FaultTolerantRuntime",
    "builtin_fault_plans",
    "get_recovery_policy",
]


# ---------------------------------------------------------------------------
# fault vocabulary
# ---------------------------------------------------------------------------


class FaultKind:
    """Typed fault events the injector understands."""

    #: The pool's GPUs die; resident KV is lost, requests need recovery.
    GPU_CRASH = "gpu_crash"
    #: Recoverable kernel/ECC error: the in-flight iteration reruns.
    TRANSIENT = "transient"
    #: Straggler: iteration costs multiply by ``factor`` for
    #: ``duration_s`` seconds, then the pool recovers.
    SLOWDOWN = "slowdown"
    #: A KV migration (disaggregated prefill→decode) is lost in flight.
    MIGRATION_FAIL = "migration_fail"
    #: The client aborts ``request_id``.
    CANCEL = "cancel"
    #: Silent data corruption: a bit flips in the pool's resident
    #: encoded weights.  Every decode is wrong until verification
    #: catches the digest mismatch and reloads the weights.
    WEIGHT_BIT_FLIP = "weight_bit_flip"
    #: Silent data corruption of KV state — resident on a pool (the
    #: lowest live sequence is garbled in place), or in flight on the
    #: disaggregated prefill→decode migration link.
    KV_CORRUPTION = "kv_corruption"
    #: A flaky replica: for ``duration_s`` seconds a seeded fraction
    #: (``factor``) of decode iterations on the target return
    #: plausible-but-wrong results with no error signal at all.
    SDC_REPLICA = "sdc_replica"


ALL_FAULT_KINDS = (
    FaultKind.GPU_CRASH,
    FaultKind.TRANSIENT,
    FaultKind.SLOWDOWN,
    FaultKind.MIGRATION_FAIL,
    FaultKind.CANCEL,
    FaultKind.WEIGHT_BIT_FLIP,
    FaultKind.KV_CORRUPTION,
    FaultKind.SDC_REPLICA,
)

#: The faults that corrupt data without raising any error signal; the
#: integrity layer (:mod:`repro.integrity`) exists to catch these.
SILENT_FAULT_KINDS = (
    FaultKind.WEIGHT_BIT_FLIP,
    FaultKind.KV_CORRUPTION,
    FaultKind.SDC_REPLICA,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    t: float
    kind: str
    target: str = "gpu0"
    duration_s: float = 0.0
    factor: float = 1.0
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"use one of {ALL_FAULT_KINDS}"
            )
        if self.t < 0:
            raise ValueError("fault time cannot be negative")
        if self.duration_s < 0:
            raise ValueError("fault duration cannot be negative")
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if self.kind == FaultKind.CANCEL and self.request_id is None:
            raise ValueError("cancellation faults need a request_id")
        if self.kind == FaultKind.SDC_REPLICA and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                "sdc_replica factor is the corrupted-iteration fraction; "
                f"it must be in (0, 1], got {self.factor}"
            )

    _FIELDS = ("t", "kind", "target", "duration_s", "factor", "request_id")
    _REQUIRED = ("t", "kind")

    def to_dict(self) -> Dict:
        return {
            "t": self.t,
            "kind": self.kind,
            "target": self.target,
            "duration_s": self.duration_s,
            "factor": self.factor,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        for key in data:
            if key not in cls._FIELDS:
                raise ValueError(
                    f"FaultEvent.from_dict: unknown key {key!r}; "
                    f"expected a subset of {cls._FIELDS}"
                )
        for key in cls._REQUIRED:
            if key not in data:
                raise ValueError(
                    f"FaultEvent.from_dict: missing required key {key!r}"
                )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable fault schedule."""

    name: str
    seed: int
    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def generate(
        cls,
        name: str,
        seed: int,
        horizon_s: float,
        pools: Sequence[str],
        crashes: int = 0,
        transients: int = 0,
        slowdowns: int = 0,
        migration_failures: int = 0,
        cancellations: int = 0,
        request_ids: Sequence[int] = (),
    ) -> "FaultPlan":
        """Draw a plan from a pinned generator.

        Every draw comes from ``np.random.default_rng(seed)`` in a fixed
        order, and times are rounded to microseconds, so the same
        arguments always produce the same plan — byte-for-byte, across
        runs and across machines.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not pools:
            raise ValueError("generate needs at least one pool name")
        if cancellations and not request_ids:
            raise ValueError("cancellations need candidate request_ids")
        rng = np.random.default_rng(seed)
        pools = tuple(pools)

        def when() -> float:
            return round(float(rng.uniform(0.0, horizon_s)), 6)

        def where() -> str:
            return pools[int(rng.integers(len(pools)))]

        events: List[FaultEvent] = []
        for _ in range(crashes):
            events.append(FaultEvent(when(), FaultKind.GPU_CRASH, where()))
        for _ in range(transients):
            events.append(FaultEvent(when(), FaultKind.TRANSIENT, where()))
        for _ in range(slowdowns):
            events.append(
                FaultEvent(
                    when(),
                    FaultKind.SLOWDOWN,
                    where(),
                    duration_s=round(
                        float(rng.uniform(0.1 * horizon_s, 0.5 * horizon_s)), 6
                    ),
                    factor=round(float(rng.uniform(1.5, 4.0)), 6),
                )
            )
        for _ in range(migration_failures):
            events.append(
                FaultEvent(when(), FaultKind.MIGRATION_FAIL, where())
            )
        for _ in range(cancellations):
            rid = int(request_ids[int(rng.integers(len(request_ids)))])
            events.append(
                FaultEvent(when(), FaultKind.CANCEL, where(), request_id=rid)
            )
        events.sort(
            key=lambda e: (
                e.t,
                e.kind,
                e.target,
                -1 if e.request_id is None else e.request_id,
            )
        )
        return cls(name=name, seed=seed, events=tuple(events))

    def scaled(self, time_factor: float) -> "FaultPlan":
        """Same plan with every timestamp multiplied (workload rescale)."""
        if time_factor <= 0:
            raise ValueError(
                "scaled() needs a positive time_factor (it multiplies "
                f"every fault timestamp), got {time_factor}"
            )
        return replace(
            self,
            events=tuple(
                replace(
                    e,
                    t=e.t * time_factor,
                    duration_s=e.duration_s * time_factor,
                )
                for e in self.events
            ),
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        for key in data:
            if key not in ("name", "seed", "events"):
                raise ValueError(
                    f"FaultPlan.from_dict: unknown key {key!r}; "
                    "expected a subset of ('name', 'seed', 'events')"
                )
        for key in ("name", "seed"):
            if key not in data:
                raise ValueError(
                    f"FaultPlan.from_dict: missing required key {key!r}"
                )
        return cls(
            name=data["name"],
            seed=data["seed"],
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", ())
            ),
        )


# ---------------------------------------------------------------------------
# recovery policies
# ---------------------------------------------------------------------------

RECOVERY_MODES = ("fail_fast", "retry", "reroute")


# Backoff jitter is a pure integer hash of (request_id, attempt) — see
# det_hash01's docstring for why it must never consume a shared RNG.
_hash01 = det_hash01


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the serving layer does when a fault takes a request down.

    Deliberately constructible in BROKEN configurations (zero backoff,
    unbounded budgets, hair-trigger deadlines): judging a policy is the
    R-rule linter's job (:func:`repro.analysis.lint_recovery_policy`),
    not the constructor's.
    """

    name: str
    mode: str = "fail_fast"
    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_frac: float = 0.1
    #: Per-request deadline from arrival; None disables timeouts.
    deadline_s: Optional[float] = None
    #: Shed arrivals when a pool's waiting queue reaches this depth;
    #: None disables load shedding.
    shed_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {self.mode!r}; "
                f"use one of {RECOVERY_MODES}"
            )

    def backoff_s(self, attempt: int, key: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), with
        deterministic jitter keyed on ``(key, attempt)``."""
        base = self.backoff_base_s * self.backoff_factor ** max(
            attempt - 1, 0
        )
        jitter = 1.0 + self.jitter_frac * (2.0 * _hash01(key, attempt) - 1.0)
        return max(base * jitter, 0.0)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "max_retries": self.max_retries,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "jitter_frac": self.jitter_frac,
            "deadline_s": self.deadline_s,
            "shed_queue_depth": self.shed_queue_depth,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RecoveryPolicy":
        return cls(**data)


#: Sane builtin policies — the three the chaos benchmark compares.
RECOVERY_POLICIES: Dict[str, RecoveryPolicy] = {
    "fail-fast": RecoveryPolicy(
        name="fail-fast",
        mode="fail_fast",
        deadline_s=120.0,
        shed_queue_depth=512,
    ),
    "retry": RecoveryPolicy(
        name="retry",
        mode="retry",
        max_retries=3,
        backoff_base_s=0.05,
        backoff_factor=2.0,
        jitter_frac=0.1,
        deadline_s=120.0,
        shed_queue_depth=512,
    ),
    "reroute": RecoveryPolicy(
        name="reroute",
        mode="reroute",
        max_retries=3,
        backoff_base_s=0.02,
        backoff_factor=2.0,
        jitter_frac=0.1,
        deadline_s=120.0,
        shed_queue_depth=512,
    ),
}

#: Deliberately broken policies the builtin lint sweep must flag, each
#: with the R-rule ids it is expected to trip.  The sweep treats an
#: expected finding as informational and the ABSENCE of an expected
#: finding as an error — the linter is regression-tested by its own CI
#: gate.
BROKEN_RECOVERY_POLICIES: Dict[str, Tuple[RecoveryPolicy, Tuple[str, ...]]] = {
    "spin-retry": (
        RecoveryPolicy(
            name="spin-retry",
            mode="retry",
            max_retries=10**6,
            backoff_base_s=0.0,
            jitter_frac=0.0,
        ),
        ("R001", "R002"),
    ),
    "hair-trigger-timeout": (
        RecoveryPolicy(
            name="hair-trigger-timeout",
            mode="retry",
            max_retries=3,
            deadline_s=1e-4,
        ),
        ("R003",),
    ),
    "shed-everything": (
        RecoveryPolicy(
            name="shed-everything",
            mode="reroute",
            max_retries=2,
            shed_queue_depth=0,
        ),
        ("R004",),
    ),
}


def get_recovery_policy(name: str) -> RecoveryPolicy:
    try:
        return RECOVERY_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {name!r}; "
            f"available: {sorted(RECOVERY_POLICIES)}"
        ) from None


# ---------------------------------------------------------------------------
# injection
# ---------------------------------------------------------------------------


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s events on a target's loop.

    Targets: a :class:`FaultTolerantRuntime` (full fault surface), a
    standalone attached :class:`ContinuousBatchingScheduler` (crash /
    transient / slowdown / cancel on its one pool), or a
    :class:`DisaggregatedRuntime` (migration failures and slowdowns).
    ``arm`` validates every event against the target BEFORE scheduling
    anything, so a bad plan fails loudly instead of half-injecting.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # ---- target adapters ---------------------------------------------------------

    def arm(self, target) -> int:
        """Schedule every event; returns how many were armed."""
        if isinstance(target, FaultTolerantRuntime):
            return self._arm_router(target)
        if isinstance(target, DisaggregatedRuntime):
            return self._arm_disaggregated(target)
        if isinstance(target, ContinuousBatchingScheduler):
            return self._arm_scheduler(target)
        raise TypeError(
            f"cannot inject faults into {type(target).__name__}"
        )

    def _arm_router(self, rt: "FaultTolerantRuntime") -> int:
        for ev in self.plan.events:
            if ev.kind == FaultKind.MIGRATION_FAIL:
                raise ValueError(
                    f"plan {self.plan.name!r}: migration faults target a "
                    "DisaggregatedRuntime, not a replica router"
                )
            if ev.kind != FaultKind.CANCEL and ev.target not in rt._by_pool:
                raise ValueError(
                    f"plan {self.plan.name!r}: unknown pool {ev.target!r}; "
                    f"router has {sorted(rt._by_pool)}"
                )
        for ev in self.plan.events:
            if ev.kind == FaultKind.CANCEL:
                self._schedule_cancel(rt.loop, ev, rt.cancel_request)
            else:
                sched = rt._by_pool[ev.target]
                self._schedule_pool_fault(rt.loop, ev, sched)
        return len(self.plan.events)

    def _arm_scheduler(self, sched: ContinuousBatchingScheduler) -> int:
        if sched._loop is None:
            raise ValueError(
                "attach() the scheduler to a loop before arming faults"
            )
        for ev in self.plan.events:
            if ev.kind == FaultKind.MIGRATION_FAIL:
                raise ValueError(
                    f"plan {self.plan.name!r}: migration faults target a "
                    "DisaggregatedRuntime, not a scheduler"
                )
            if ev.kind != FaultKind.CANCEL and ev.target != sched.pool.name:
                raise ValueError(
                    f"plan {self.plan.name!r}: unknown pool {ev.target!r}; "
                    f"the scheduler serves {sched.pool.name!r}"
                )
        for ev in self.plan.events:
            if ev.kind == FaultKind.CANCEL:
                self._schedule_cancel(sched._loop, ev, sched.cancel_request)
            else:
                self._schedule_pool_fault(sched._loop, ev, sched)
        return len(self.plan.events)

    def _arm_disaggregated(self, rt: DisaggregatedRuntime) -> int:
        pools = {
            rt.prefill_pool.name: rt.prefill_pool,
            rt.decode_pool.name: rt.decode_pool,
        }
        allowed = (
            FaultKind.MIGRATION_FAIL,
            FaultKind.SLOWDOWN,
            FaultKind.KV_CORRUPTION,
        )
        for ev in self.plan.events:
            if ev.kind not in allowed:
                raise ValueError(
                    f"plan {self.plan.name!r}: a DisaggregatedRuntime only "
                    "takes migration_fail, kv_corruption and slowdown "
                    f"faults, not {ev.kind!r}"
                )
            if ev.target not in pools:
                raise ValueError(
                    f"plan {self.plan.name!r}: unknown pool {ev.target!r}; "
                    f"runtime has {sorted(pools)}"
                )
        for ev in self.plan.events:
            if ev.kind == FaultKind.MIGRATION_FAIL:
                rt.loop.schedule_at(ev.t, rt.migration_fault)
            elif ev.kind == FaultKind.KV_CORRUPTION:
                # Garble the next migration crossing the link.
                rt.loop.schedule_at(ev.t, rt.kv_corruption)
            else:
                self._schedule_slowdown(
                    rt.loop, ev, pools[ev.target],
                    rt.trace, rt.decode_sched.stats,
                )
        return len(self.plan.events)

    # ---- event wiring ------------------------------------------------------------

    @staticmethod
    def _schedule_cancel(loop: EventLoop, ev: FaultEvent, cancel) -> None:
        loop.schedule_at(ev.t, lambda: cancel(ev.request_id))

    def _schedule_pool_fault(
        self, loop: EventLoop, ev: FaultEvent,
        sched: ContinuousBatchingScheduler,
    ) -> None:
        if ev.kind == FaultKind.GPU_CRASH:
            loop.schedule_at(ev.t, lambda: sched.fail_pool("injected"))
        elif ev.kind == FaultKind.TRANSIENT:
            loop.schedule_at(ev.t, sched.transient_error)
        elif ev.kind == FaultKind.SLOWDOWN:
            self._schedule_slowdown(
                loop, ev, sched.pool, sched.trace, sched.stats
            )
        elif ev.kind == FaultKind.WEIGHT_BIT_FLIP:
            loop.schedule_at(ev.t, sched.corrupt_weights)
        elif ev.kind == FaultKind.KV_CORRUPTION:
            loop.schedule_at(ev.t, sched.corrupt_resident_kv)
        elif ev.kind == FaultKind.SDC_REPLICA:
            self._schedule_sdc_window(loop, ev, sched)
        else:  # pragma: no cover - arm() validated kinds already
            raise AssertionError(ev.kind)

    @staticmethod
    def _schedule_sdc_window(
        loop: EventLoop, ev: FaultEvent,
        sched: ContinuousBatchingScheduler,
    ) -> None:
        def begin() -> None:
            if not sched.pool.alive:
                return  # a flaky fault on a crashed pool is moot
            sched.begin_sdc_window(ev.factor, ev.duration_s)

        loop.schedule_at(ev.t, begin)
        loop.schedule_at(ev.t + ev.duration_s, sched.end_sdc_window)

    @staticmethod
    def _schedule_slowdown(
        loop: EventLoop,
        ev: FaultEvent,
        pool: GPUPool,
        trace: RuntimeTrace,
        stats: RuntimeStats,
    ) -> None:
        def hit() -> None:
            if not pool.alive:
                return  # a straggler fault on a crashed pool is moot
            stats.faults += 1
            pool.set_slowdown(ev.factor)
            trace.record(
                loop.now, EventKind.FAULT, None, pool.name,
                fault="slowdown", factor=ev.factor,
                duration_s=ev.duration_s,
            )

        def recover() -> None:
            if not pool.alive:
                return
            pool.set_slowdown(1.0)
            trace.record(loop.now, EventKind.RECOVER, None, pool.name)

        loop.schedule_at(ev.t, hit)
        loop.schedule_at(ev.t + ev.duration_s, recover)


# ---------------------------------------------------------------------------
# fault-tolerant router
# ---------------------------------------------------------------------------


class FaultTolerantRuntime:
    """Health-checked router over N single-pool replica schedulers.

    One loop, one trace, one fleet-level :class:`RuntimeStats`.
    Arrivals route to the least-loaded ALIVE pool; a crash hands every
    victim back here, where the :class:`RecoveryPolicy` decides: fail
    fast, retry the same pool after backoff, or reroute to a survivor
    and recompute the lost KV from the prompt (the re-admission
    prefills ``prompt + generated`` — exactly vLLM's preemption
    recompute discipline, reused for crash recovery).  The router also
    owns per-request deadlines, as cancellable loop events, so a
    timeout follows a request across reroutes and backoff windows.
    """

    def __init__(
        self,
        pools: Sequence[GPUPool],
        recovery: RecoveryPolicy,
        policy: str = "fcfs",
        prefill_mode: str = "chunked",
        chunk_tokens: int = 128,
        preemption: bool = True,
        snapshot_every: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        loop: Optional[EventLoop] = None,
        integrity=None,
    ) -> None:
        if not pools:
            raise ValueError("the router needs at least one pool")
        if len({p.name for p in pools}) != len(pools):
            raise ValueError("pool names must be unique")
        self.recovery = recovery
        #: Optional :class:`repro.integrity.IntegrityPolicy` (duck-
        #: typed to keep the runtime layer import-free of the integrity
        #: package).  None ⇒ no tagging, no verification, no quarantine
        #: — bit-identical to the pre-integrity runtime.
        self.integrity = integrity
        #: Detected corruptions per pool, for the quarantine policy.
        self._corruptions: Dict[str, int] = {}
        self.loop = loop if loop is not None else EventLoop()
        self.trace = RuntimeTrace()
        self.stats = RuntimeStats(
            kv_budget_bytes=sum(p.kv_budget_bytes for p in pools),
            total_blocks=sum(p.allocator.total_blocks for p in pools),
            trace=self.trace,
        )
        # Scheduler construction knobs, kept so elastically added pools
        # (fleet scale-up) are configured identically to the originals.
        self._sched_policy = policy
        self._prefill_mode = prefill_mode
        self._chunk_tokens = chunk_tokens
        self._preemption = preemption
        self._snapshot_every = snapshot_every
        #: Pools excluded from routing: drains take no NEW work but keep
        #: finishing resident work; retired pools are decommissioned.
        self._draining: set = set()
        self._retired: set = set()
        self.schedulers: List[ContinuousBatchingScheduler] = []
        self._by_pool: Dict[str, ContinuousBatchingScheduler] = {}
        for pool in pools:
            self.add_pool(pool, _initial=True)
        #: Optional callback fired after a request reaches ANY terminal
        #: bucket — the streaming server's session manager releases
        #: tenant quota and schedules the next session turn here.
        self.terminal_listener = None
        self._location: Dict[int, ContinuousBatchingScheduler] = {}
        self._attempts: Dict[int, int] = {}
        self._deadlines: Dict[int, int] = {}
        self._resubmits: Dict[int, Tuple[int, object]] = {}
        if fault_plan is not None:
            FaultInjector(fault_plan).arm(self)

    # ---- elastic fleet membership ----------------------------------------------------

    def add_pool(
        self, pool: GPUPool, _initial: bool = False
    ) -> ContinuousBatchingScheduler:
        """Register a replica pool, mid-run or at construction.

        The fleet autoscaler provisions capacity through here: the new
        scheduler shares the router's loop/trace/stats and is built with
        the same knobs as the originals, so a scaled-up replica is
        indistinguishable from one present since t=0.
        """
        if pool.name in self._by_pool:
            raise ValueError(f"pool {pool.name!r} already registered")
        sched = ContinuousBatchingScheduler(
            pool,
            policy=self._sched_policy,
            prefill_mode=self._prefill_mode,
            chunk_tokens=self._chunk_tokens,
            preemption=self._preemption,
            snapshot_every=self._snapshot_every,
            recovery=self.recovery,
        ).attach(self.loop, self.trace, self.stats)
        sched.router = self
        sched.integrity = self.integrity
        self.schedulers.append(sched)
        self._by_pool[pool.name] = sched
        if not _initial:
            self.stats.kv_budget_bytes += pool.kv_budget_bytes
            self.stats.total_blocks += pool.allocator.total_blocks
        return sched

    def set_draining(self, name: str, draining: bool = True) -> None:
        """Mark/unmark a pool as draining: it takes no new work via
        ``route()``/``prefer`` but keeps finishing what it holds."""
        if name not in self._by_pool:
            raise KeyError(f"unknown pool {name!r}")
        if draining:
            self._draining.add(name)
        else:
            self._draining.discard(name)

    def retire_pool(self, name: str) -> None:
        """Decommission a drained pool.  Refuses while work is resident
        — retirement must never lose requests (that would be a crash,
        not a scale-down)."""
        sched = self._by_pool.get(name)
        if sched is None:
            raise KeyError(f"unknown pool {name!r}")
        if sched._running or sched._policy:
            raise RuntimeError(
                f"pool {name!r} still holds work; drain before retiring"
            )
        self._draining.discard(name)
        self._retired.add(name)

    def is_routable(self, sched: ContinuousBatchingScheduler) -> bool:
        name = sched.pool.name
        return (
            sched.pool.alive
            and name not in self._draining
            and name not in self._retired
        )

    # ---- routing ---------------------------------------------------------------------

    def route(self, exclude=None) -> Optional[ContinuousBatchingScheduler]:
        """Least-loaded routable pool; name breaks ties
        deterministically.  Draining and retired pools are skipped —
        scale-down must starve a replica of new work to drain it."""
        alive = [
            s
            for s in self.schedulers
            if self.is_routable(s) and s is not exclude
        ]
        if not alive:
            return None
        return min(
            alive,
            key=lambda s: (len(s._running) + len(s._policy), s.pool.name),
        )

    def submit(self, req, prefer: Optional[str] = None) -> None:
        """Route and submit.  ``prefer`` names a pool to favour while it
        is alive — session affinity, so a multi-turn session lands on
        the pool holding its KV prefix.  A dead preferred pool falls
        back to normal least-loaded routing (the reroute-recompute
        path re-prefills the lost prefix)."""
        now = self.loop.now
        sched = None
        if prefer is not None:
            candidate = self._by_pool.get(prefer)
            if candidate is not None and self.is_routable(candidate):
                sched = candidate
        if sched is None:
            sched = self.route()
        if sched is None:
            self.trace.record(
                now, EventKind.SHED, req.request_id, "router",
                reason="no alive pools",
            )
            self.stats.shed.append(req)
            if self.terminal_listener is not None:
                self.terminal_listener(req)
            return
        self._location[req.request_id] = sched
        self._attempts.setdefault(req.request_id, 1)
        if (
            self.recovery.deadline_s is not None
            and req.request_id not in self._deadlines
        ):
            deadline = max(req.arrival_s + self.recovery.deadline_s, now)
            self._deadlines[req.request_id] = self.loop.schedule_at(
                deadline, lambda: self._deadline_fired(req)
            )
        sched.submit(req)

    # ---- scheduler callbacks ---------------------------------------------------------

    def on_terminal(self, req) -> None:
        """A replica resolved the request (any terminal bucket)."""
        rid = req.request_id
        handle = self._deadlines.pop(rid, None)
        if handle is not None:
            self.loop.cancel(handle)
        pending = self._resubmits.pop(rid, None)
        if pending is not None:
            self.loop.cancel(pending[0])
        self._location.pop(rid, None)
        if self.terminal_listener is not None:
            self.terminal_listener(req)

    def on_corruption_detected(
        self, sched: ContinuousBatchingScheduler
    ) -> None:
        """A replica's verification caught a silent corruption.

        Quarantine state machine: detections per pool accumulate; once
        they reach ``integrity.quarantine_after`` the pool is failed
        exactly like a crash — resident work reroutes under the
        recovery policy, lost KV recomputes from the prompt, and the
        fleet layer may later heal the replica.  Detection without a
        quarantine budget just counts (the ``verify`` policy): the
        replica keeps redoing corrupted work at the verification cost.
        """
        pol = self.integrity
        if pol is None:
            return
        name = sched.pool.name
        count = self._corruptions.get(name, 0) + 1
        self._corruptions[name] = count
        after = getattr(pol, "quarantine_after", None)
        if after is None or count < after or not sched.pool.alive:
            return
        self.stats.quarantines += 1
        self.trace.record(
            self.loop.now, EventKind.QUARANTINE, None, name,
            detections=count,
        )
        sched.fail_pool(f"quarantined after {count} detected corruptions")

    def on_pool_failure(self, req, sched: ContinuousBatchingScheduler) -> None:
        """A crash took ``req`` down on ``sched``; apply the policy."""
        now = self.loop.now
        rid = req.request_id
        attempt = self._attempts.get(rid, 1)
        if (
            self.recovery.mode == "fail_fast"
            or attempt > self.recovery.max_retries
        ):
            self.trace.record(
                now, EventKind.FAIL, rid, sched.pool.name,
                reason=f"recovery exhausted after {attempt - 1} retry(ies)",
            )
            self.stats.failed.append(req)
            self.on_terminal(req)
            return
        self._attempts[rid] = attempt + 1
        self.stats.retries += 1
        delay = self.recovery.backoff_s(attempt, rid)
        if self.recovery.mode == "retry":
            # Naive same-pool retry: if the pool stays dead this comes
            # straight back here with attempt+1 until the budget runs
            # out — which is the point of comparing it against reroute.
            target = sched
            self.trace.record(
                now, EventKind.RETRY, rid, sched.pool.name,
                attempt=attempt, delay_s=delay,
            )
        else:
            target = self.route()
            if target is None:
                self.trace.record(
                    now, EventKind.FAIL, rid, sched.pool.name,
                    reason="no alive pools",
                )
                self.stats.failed.append(req)
                self.on_terminal(req)
                return
            self.trace.record(
                now, EventKind.REROUTE, rid, target.pool.name,
                src=sched.pool.name, attempt=attempt, delay_s=delay,
            )
        self._location[rid] = target

        def fire() -> None:
            self._resubmits.pop(rid, None)
            target.submit(req)

        self._resubmits[rid] = (self.loop.schedule_after(delay, fire), req)

    # ---- deadlines and cancellation --------------------------------------------------

    def _deadline_fired(self, req) -> None:
        rid = req.request_id
        self._deadlines.pop(rid, None)
        reason = f"deadline {self.recovery.deadline_s}s exceeded"
        sched = self._location.get(rid)
        if sched is not None and sched.evict(
            req, EventKind.TIMEOUT, self.stats.timed_out, reason=reason
        ):
            return  # evict() resolved it through on_terminal
        # Not resident on any replica: it is waiting out a backoff.
        pending = self._resubmits.pop(rid, None)
        if pending is not None:
            self.loop.cancel(pending[0])
        self._location.pop(rid, None)
        self.trace.record(
            self.loop.now, EventKind.TIMEOUT, rid, "router", reason=reason
        )
        self.stats.timed_out.append(req)
        if self.terminal_listener is not None:
            self.terminal_listener(req)

    def cancel_request(self, request_id: int) -> bool:
        sched = self._location.get(request_id)
        if sched is not None and sched.cancel_request(request_id):
            return True
        pending = self._resubmits.pop(request_id, None)
        if pending is None:
            return False
        handle, req = pending
        self.loop.cancel(handle)
        dl = self._deadlines.pop(request_id, None)
        if dl is not None:
            self.loop.cancel(dl)
        self._location.pop(request_id, None)
        self.trace.record(
            self.loop.now, EventKind.CANCEL, request_id, "router",
            reason="client cancelled",
        )
        self.stats.cancelled.append(req)
        if self.terminal_listener is not None:
            self.terminal_listener(req)
        return True

    # ---- entry point -----------------------------------------------------------------

    def run(self, requests: Sequence) -> RuntimeStats:
        if not requests:
            raise ValueError("empty workload")
        for req in sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        ):
            self.loop.schedule_at(
                req.arrival_s,
                (lambda r: lambda: self.submit(r))(req),
            )
        self.loop.run()
        return self.finalize()

    def finalize(self) -> RuntimeStats:
        for sched in self.schedulers:
            sched.finalize()  # raises when a replica failed to drain
        self.stats.makespan_s = self.loop.now
        return self.stats


# ---------------------------------------------------------------------------
# builtin plans
# ---------------------------------------------------------------------------


def builtin_fault_plans() -> Dict[str, FaultPlan]:
    """Pinned plans used by ``repro chaos``, the benches and the lint
    sweep.  Times assume the chaos scenario's ~6 s arrival window."""
    return {
        # One replica dies mid-run with work in flight: the scenario
        # where reroute+recompute visibly beats fail-fast on goodput.
        "gpu-crash": FaultPlan(
            name="gpu-crash",
            seed=0,
            events=(FaultEvent(1.5, FaultKind.GPU_CRASH, "gpu1"),),
        ),
        "stragglers": FaultPlan.generate(
            name="stragglers",
            seed=7,
            horizon_s=6.0,
            pools=("gpu0", "gpu1"),
            slowdowns=2,
            transients=2,
        ),
        "chaos-mix": FaultPlan.generate(
            name="chaos-mix",
            seed=13,
            horizon_s=6.0,
            pools=("gpu0", "gpu1"),
            crashes=1,
            transients=2,
            slowdowns=1,
        ),
        # Two losses on the prefill→decode link, armed while the
        # reference disaggregated scenario's migration (batch 8, prompt
        # 256: in flight ~0.38–0.43 s) is crossing — the retry policy
        # re-sends twice and still lands the batch.
        "flaky-link": FaultPlan(
            name="flaky-link",
            seed=11,
            events=(
                FaultEvent(0.38, FaultKind.MIGRATION_FAIL, "decode"),
                FaultEvent(0.40, FaultKind.MIGRATION_FAIL, "decode"),
            ),
        ),
        # Silent-data-corruption plans: none of these faults raise any
        # error signal.  Without the integrity layer the runtime serves
        # wrong tokens with perfect availability; with verification on,
        # every corruption is caught and the work redone or rerouted.
        "sdc-replica": FaultPlan(
            name="sdc-replica",
            seed=17,
            events=(
                # gpu1 goes flaky for most of the run: 40% of its decode
                # iterations return plausible-but-wrong results.  A KV
                # block on gpu0 is also garbled in place mid-run.
                FaultEvent(
                    0.5, FaultKind.SDC_REPLICA, "gpu1",
                    duration_s=3.0, factor=0.4,
                ),
                FaultEvent(1.2, FaultKind.KV_CORRUPTION, "gpu0"),
            ),
        ),
        "weight-flip": FaultPlan(
            name="weight-flip",
            seed=19,
            events=(
                FaultEvent(1.0, FaultKind.WEIGHT_BIT_FLIP, "gpu1"),
            ),
        ),
        # One corruption on the prefill→decode link while the reference
        # disaggregated migration is in flight (~0.38–0.43 s): the KV
        # arrives garbled and, unverified, poisons the whole batch.
        "kv-poison": FaultPlan(
            name="kv-poison",
            seed=23,
            events=(
                FaultEvent(0.38, FaultKind.KV_CORRUPTION, "decode"),
            ),
        ),
    }
