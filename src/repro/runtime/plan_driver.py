"""Tight replay driver for compiled execution plans.

The interpreted path pays, per event: a heap push/pop with the
``(time, phase, insertion)`` ordering key, observer hook calls, a
Python callback dispatch, cost-model arithmetic, and allocator
bookkeeping.  :class:`PlanDriver` replays a compiled
:class:`~repro.plan.ir.ExecutionPlan` with none of that — a single
linear pass over the preallocated step array, reconstructing the
observable :class:`~repro.runtime.trace.RuntimeTrace` from each step's
stored event payloads.  Per-layer SpMM costs were folded into the
plan's :class:`~repro.gpu.fused_steps.FusedDecodeStep` descriptors at
compile time, so the driver touches no kernel or cost-model code.

Correctness is not assumed: the E-family validator
(:mod:`repro.analysis.plan_validator`) statically audits the plan
before execution, and its E008 rule replays every builtin scenario
through BOTH paths and requires bit-identical trace checksums.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .events import TraceEvent
from .trace import RuntimeTrace

__all__ = ["PlanRun", "PlanDriver"]


@dataclass
class PlanRun:
    """Observable outcome of one plan replay."""

    name: str
    trace: RuntimeTrace
    makespan_s: float = 0.0
    steps_executed: int = 0
    events_replayed: int = 0
    #: Replayed event counts by kind (compared to the plan's
    #: ``expected_counts``).
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def checksum(self) -> str:
        """Trace checksum — must equal the plan's ``expected_checksum``."""
        from ..plan.ir import trace_checksum

        return trace_checksum(self.trace)


class PlanDriver:
    """Executes :class:`~repro.plan.ir.ExecutionPlan` step arrays."""

    def execute(self, plan) -> PlanRun:
        trace = RuntimeTrace()
        counters: Dict[str, int] = {}
        steps_executed = 0
        events = trace.events
        for step in plan.steps:
            if step.kind != "events":
                # kv_barrier is an ordering no-op at replay time (the
                # step array is already totally ordered); halt ends the
                # plan.
                if step.kind == "halt":
                    steps_executed += 1
                    break
                steps_executed += 1
                continue
            steps_executed += 1
            for t, kind, seq_id, pool, info_items in step.events:
                events.append(
                    TraceEvent(
                        t=t,
                        kind=kind,
                        seq_id=seq_id,
                        pool=pool,
                        info=dict(info_items),
                    )
                )
                counters[kind] = counters.get(kind, 0) + 1
        return PlanRun(
            name=plan.name,
            trace=trace,
            makespan_s=plan.makespan_s,
            steps_executed=steps_executed,
            events_replayed=len(events),
            counters=counters,
        )
