"""Runtime traces: the event log and auditable KV snapshots.

A :class:`RuntimeTrace` is the runtime's complete observable record:
an ordered list of :class:`~repro.runtime.events.TraceEvent` scheduler
decisions plus periodic :class:`KVSnapshot` captures of the paged
allocator.  Snapshots expose the same introspection surface as a live
:class:`~repro.llm.kv_cache.KVBlockAllocator` (``block_tables()``,
``refcounts()``, ``free_block_ids()``, ``sequence()``), so
``repro.analysis.plan_lint.lint_kv_allocator`` audits them unchanged —
the event simulation is translation-validated against the static
checker's K001–K005 rules at every captured instant, not just at the
end of a run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..llm.kv_cache import KVBlockAllocator, SequenceAllocation
from .events import TraceEvent

__all__ = ["KVSnapshot", "RuntimeTrace"]


@dataclass(frozen=True)
class KVSnapshot:
    """Immutable copy of an allocator's bookkeeping at one instant.

    Duck-compatible with :class:`KVBlockAllocator` for everything the
    K-rule checker reads.
    """

    t: float
    pool: str
    total_blocks: int
    block_size: int
    tables: Dict[int, List[int]]
    refs: Dict[int, int]
    free: List[int]
    tokens: Dict[int, int]

    @classmethod
    def capture(
        cls, alloc: KVBlockAllocator, t: float, pool: str = "gpu0"
    ) -> "KVSnapshot":
        tables = alloc.block_tables()
        return cls(
            t=t,
            pool=pool,
            total_blocks=alloc.total_blocks,
            block_size=alloc.block_size,
            tables=tables,
            refs=alloc.refcounts(),
            free=alloc.free_block_ids(),
            tokens={sid: alloc.sequence(sid).tokens for sid in tables},
        )

    # ---- KVBlockAllocator introspection surface --------------------------------------

    def block_tables(self) -> Dict[int, List[int]]:
        return {sid: list(t) for sid, t in self.tables.items()}

    def refcounts(self) -> Dict[int, int]:
        return dict(self.refs)

    def free_block_ids(self) -> List[int]:
        return list(self.free)

    def sequence(self, seq_id: int) -> SequenceAllocation:
        try:
            return SequenceAllocation(
                seq_id=seq_id,
                block_ids=list(self.tables[seq_id]),
                tokens=self.tokens[seq_id],
            )
        except KeyError:
            raise KeyError(f"unknown sequence {seq_id}") from None

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - len(self.free)

    def to_dict(self) -> Dict:
        return {
            "t": self.t,
            "pool": self.pool,
            "total_blocks": self.total_blocks,
            "block_size": self.block_size,
            "block_tables": {str(k): v for k, v in self.tables.items()},
            "refcounts": {str(k): v for k, v in self.refs.items()},
            "free": list(self.free),
            "tokens": {str(k): v for k, v in self.tokens.items()},
        }


@dataclass
class RuntimeTrace:
    """Append-only record of one runtime execution."""

    events: List[TraceEvent] = field(default_factory=list)
    snapshots: List[KVSnapshot] = field(default_factory=list)

    def record(
        self,
        t: float,
        kind: str,
        seq_id: Optional[int] = None,
        pool: str = "gpu0",
        **info,
    ) -> None:
        self.events.append(
            TraceEvent(t=t, kind=kind, seq_id=seq_id, pool=pool, info=info)
        )

    def snapshot(
        self, alloc: KVBlockAllocator, t: float, pool: str = "gpu0"
    ) -> KVSnapshot:
        snap = KVSnapshot.capture(alloc, t, pool)
        self.snapshots.append(snap)
        self.record(t, "snapshot", pool=pool, index=len(self.snapshots) - 1)
        return snap

    # ---- views -----------------------------------------------------------------------

    def event_log(self) -> List[Tuple]:
        """The canonical comparison form for determinism assertions."""
        return [e.key() for e in self.events]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "events": [
                    {
                        "t": e.t,
                        "kind": e.kind,
                        "seq_id": e.seq_id,
                        "pool": e.pool,
                        **e.info,
                    }
                    for e in self.events
                ],
                "snapshots": [s.to_dict() for s in self.snapshots],
            },
            indent=indent,
        )
