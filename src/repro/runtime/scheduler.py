"""Schedulers: policies layered on the event loop and GPU pools.

:class:`ContinuousBatchingScheduler` is the Orca/vLLM-style iteration
scheduler: requests are admitted into a running batch under a live KV
budget (the pool's :class:`~repro.llm.kv_cache.KVBlockAllocator` is the
single source of truth — no token arithmetic on the side), prefill runs
either *blocking* (charged serially at admission, the legacy behaviour)
or *chunked* (interleaved with decode steps, killing head-of-line
blocking), and when the pool runs dry the scheduler preempts by
recompute exactly like vLLM: the victim's blocks are freed, the request
re-queues, and on re-admission it re-prefills ``prompt + generated``
tokens.

Admission safety comes in two modes:

* **reserve** (preemption off) — worst-case ``prompt + output`` blocks
  are committed at admission, so ``append_token`` can never fail; this
  is the legacy simulator's discipline, done in block units.
* **on-demand** (preemption on) — only the immediately needed blocks
  gate admission; the batch grows past the worst-case wall and
  preemption pays for the overcommit when it is actually hit.

:class:`DisaggregatedRuntime` composes two pools with KV-migration
events: prefill batches on pool A, the produced cache crosses the
inter-pool link as an explicit timed event, and decode continues on
pool B through a ``preloaded``-mode batching scheduler.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..llm.inference import PhaseBreakdown
from .core import EventLoop, GPUPool, det_hash01
from .events import EventKind
from .policies import AdmissionPolicy, get_policy
from .request import TokenEvent
from .trace import RuntimeTrace

__all__ = [
    "PREFILL_MODES",
    "SeqState",
    "RuntimeStats",
    "ContinuousBatchingScheduler",
    "DisaggregatedRuntime",
]

PREFILL_MODES = ("blocking", "chunked", "preloaded")


@dataclass(eq=False)
class SeqState:
    """One admitted sequence's runtime state.

    The request object carries the externally visible fields
    (``generated``, ``start_s``, ``first_token_s``, ``finish_s``); this
    wrapper tracks what the scheduler needs between iterations.
    """

    req: object
    seq_id: int
    prefill_target: int
    prefill_done: int = 0
    reserved_blocks: int = 0
    admit_order: int = 0
    #: Prefix tokens materialised by a session-cache fork at admission
    #: (never re-prefilled; 0 for one-shot requests).
    cached: int = 0

    @property
    def decoding(self) -> bool:
        return self.prefill_done >= self.prefill_target


@dataclass
class RuntimeStats:
    """Aggregate outcome of one scheduler run.

    Every submitted request lands in exactly ONE terminal bucket:
    ``completed``, ``rejected`` (impossible at arrival — would never
    fit), ``shed`` (load-shedding under degraded capacity), ``failed``
    (recovery exhausted after faults), ``timed_out`` (deadline missed)
    or ``cancelled``.  The fault-conservation linter (rule R005) and
    the hypothesis property tests pin this partition down.
    """

    completed: List = field(default_factory=list)
    rejected: List = field(default_factory=list)
    failed: List = field(default_factory=list)
    shed: List = field(default_factory=list)
    timed_out: List = field(default_factory=list)
    cancelled: List = field(default_factory=list)
    makespan_s: float = 0.0
    peak_batch: int = 0
    peak_concurrency: int = 0
    preemptions: int = 0
    iterations: int = 0
    retries: int = 0
    faults: int = 0
    wasted_recompute_tokens: int = 0
    #: Silent-data-corruption accounting (:mod:`repro.integrity`):
    #: corruption events injected by the fault layer, events caught by
    #: verification, corrupted requests that nevertheless reached the
    #: ``completed`` bucket (only possible with verification off),
    #: replicas quarantined, and modelled verification seconds.
    sdc_injected: int = 0
    sdc_detected: int = 0
    corrupted_completed: int = 0
    quarantines: int = 0
    verification_s: float = 0.0
    #: Prompt tokens actually prefilled vs. skipped via a shared
    #: session prefix — the pair the multi-turn bench compares.
    prefill_tokens: int = 0
    cached_prefill_tokens: int = 0
    prefill_s: float = 0.0
    decode_breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    kv_budget_bytes: float = 0.0
    total_blocks: int = 0
    trace: Optional[RuntimeTrace] = None

    # ---- SLO metrics ----------------------------------------------------------------

    @property
    def offered(self) -> int:
        """Requests the service accepted responsibility for: everything
        terminal except arrival-time rejections (those could never fit
        and are a sizing error, not a service failure)."""
        return (
            len(self.completed)
            + len(self.failed)
            + len(self.shed)
            + len(self.timed_out)
            + len(self.cancelled)
        )

    @property
    def goodput_tokens_per_s(self) -> float:
        """Output tokens of COMPLETED requests per second of makespan —
        work burned on requests that later failed or timed out does not
        count (that is the whole point of the metric under faults)."""
        if self.makespan_s <= 0:
            return 0.0
        tokens = sum(r.output_len for r in self.completed)
        return tokens / self.makespan_s

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed."""
        return len(self.completed) / self.offered if self.offered else 1.0

    @property
    def retries_per_request(self) -> float:
        return self.retries / self.offered if self.offered else 0.0


class ContinuousBatchingScheduler:
    """Iteration-level continuous batching over one :class:`GPUPool`."""

    def __init__(
        self,
        pool: GPUPool,
        policy: str = "fcfs",
        prefill_mode: str = "blocking",
        chunk_tokens: int = 128,
        preemption: bool = False,
        snapshot_every: int = 0,
        recovery=None,
    ) -> None:
        if prefill_mode not in PREFILL_MODES:
            raise ValueError(
                f"unknown prefill mode {prefill_mode!r}; "
                f"use one of {PREFILL_MODES}"
            )
        if chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        if snapshot_every < 0:
            raise ValueError("snapshot_every cannot be negative")
        self.pool = pool
        self.prefill_mode = prefill_mode
        self.chunk_tokens = chunk_tokens
        self.preemption = preemption
        self.snapshot_every = snapshot_every
        #: Optional :class:`~repro.runtime.faults.RecoveryPolicy`.  When
        #: None every fault path is dead code and the scheduler behaves
        #: bit-identically to the pre-fault runtime.
        self.recovery = recovery
        #: Set by :class:`~repro.runtime.faults.FaultTolerantRuntime`
        #: when this scheduler is one replica behind a router; the
        #: router then owns deadlines and crash rerouting.
        self.router = None
        #: Optional :class:`~repro.runtime.request.TokenStream`: every
        #: decode token is pushed as a :class:`TokenEvent` and flushed
        #: end-of-instant via ``loop.defer``.  None = no streaming and
        #: a bit-identical event schedule.
        self.stream = None
        #: Optional session prefix hook: ``prefix_source(req)`` returns
        #: ``(parent_seq_id, cached_tokens)`` when a shared prefix for
        #: the request lives in this pool's allocator, else None.  At
        #: admission the scheduler forks it copy-on-write instead of
        #: re-prefilling those tokens.
        self.prefix_source = None
        #: Optional retention hook called as ``retain_kv(seq_id, req)``
        #: just before a finished request's blocks are freed — the
        #: session manager forks the sequence into a session-owned
        #: prefix there, so the blocks survive under refcount.
        self.retain_kv = None
        #: Optional :class:`repro.integrity.IntegrityPolicy` (duck-
        #: typed — the runtime layer never imports the integrity
        #: package).  None ⇒ no tagging, no verification, no modelled
        #: check cost: bit-identical to the pre-integrity scheduler.
        self.integrity = None
        #: Silent-fault state (set by the injector's SDC adapters).
        self._weights_corrupted = False
        self._sdc_frac = 0.0
        self._sdc_draws = 0
        self._iter_corrupt = False
        self._pool_salt = zlib.crc32(pool.name.encode()) & 0x7FFFFFFF
        self.failed = False
        self._policy: AdmissionPolicy = get_policy(policy)
        self._running: List[SeqState] = []
        self._committed_blocks = 0  # reserve-mode worst-case accounting
        self._busy = False
        self._admit_counter = 0
        self._pending_transients = 0
        self._iter_handle: Optional[int] = None
        self._iter_cost = 0.0
        self._deadlines: dict = {}  # request_id -> cancellable handle
        self._loop: Optional[EventLoop] = None
        self.trace = RuntimeTrace()
        self.stats = RuntimeStats(
            kv_budget_bytes=pool.kv_budget_bytes,
            total_blocks=pool.allocator.total_blocks,
            trace=self.trace,
        )

    # ---- wiring ----------------------------------------------------------------------

    def attach(
        self,
        loop: EventLoop,
        trace: Optional[RuntimeTrace] = None,
        stats: Optional[RuntimeStats] = None,
    ) -> "ContinuousBatchingScheduler":
        """Bind to an external loop (multi-pool compositions share one
        loop, one trace and — for fleet-level SLO metrics — one stats
        object)."""
        self._loop = loop
        if trace is not None:
            self.trace = trace
            self.stats.trace = trace
        if stats is not None:
            self.stats = stats
        return self

    def run(
        self, requests: Sequence, loop: Optional[EventLoop] = None
    ) -> RuntimeStats:
        """Simulate a whole trace on a private loop (or a supplied one —
        instrumented runs hand in a loop carrying a schedule observer)."""
        if not requests:
            raise ValueError("empty workload")
        if loop is None:
            loop = EventLoop()
        self.attach(loop)
        for req in sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        ):
            loop.schedule_at(req.arrival_s, self._make_arrival(req))
        loop.run()
        return self.finalize()

    def _make_arrival(self, req) -> Callable[[], None]:
        return lambda: self.submit(req)

    def finalize(self) -> RuntimeStats:
        if self._running or self._policy:
            raise RuntimeError(
                f"finalize with {len(self._running)} running and "
                f"{len(self._policy)} queued sequences — the loop did "
                "not drain"
            )
        self.stats.makespan_s = self._loop.now if self._loop else 0.0
        if self.snapshot_every:
            # Terminal snapshot: proves every block went back to the
            # free list (refcount conservation after a full trace).
            self.trace.snapshot(
                self.pool.allocator, self.stats.makespan_s, self.pool.name
            )
        return self.stats

    # ---- arrivals --------------------------------------------------------------------

    def submit(self, req) -> None:
        """A request reaches this pool now (arrival, KV hand-off, or a
        post-fault resubmission)."""
        now = self._loop.now
        if not self.pool.alive:
            # A resubmission raced a crash (the naive same-pool retry
            # discipline does exactly this): count it as another
            # failure attempt, or fail terminally when standalone.
            if self.router is not None:
                self.router.on_pool_failure(req, self)
            else:
                self.trace.record(
                    now, EventKind.FAIL, req.request_id, self.pool.name,
                    reason="pool down",
                )
                self.stats.failed.append(req)
                self._resolve(req)
            return
        total_tokens = req.total_tokens
        self.trace.record(
            now, EventKind.ARRIVE, req.request_id, self.pool.name,
            prompt=req.prompt_len, output=req.output_len,
        )
        if not self.pool.fits_at_all(total_tokens):
            # The legacy simulator parked such requests forever (the
            # admission loop never advanced the clock).  Reject loudly.
            self.trace.record(
                now, EventKind.REJECT, req.request_id, self.pool.name,
                reason=(
                    f"needs {self.pool.blocks_for(total_tokens)} KV blocks "
                    f"for {total_tokens} tokens; the pool has "
                    f"{self.pool.allocator.total_blocks}"
                ),
            )
            self.stats.rejected.append(req)
            self._resolve(req)
            return
        if (
            self.recovery is not None
            and self.recovery.shed_queue_depth is not None
            and len(self._policy) >= self.recovery.shed_queue_depth
        ):
            # Load shedding: reject-with-reason at admission instead of
            # letting a degraded fleet's queue collapse into timeouts.
            self.trace.record(
                now, EventKind.SHED, req.request_id, self.pool.name,
                reason=(
                    f"queue depth {len(self._policy)} at limit "
                    f"{self.recovery.shed_queue_depth}"
                ),
            )
            self.stats.shed.append(req)
            self._resolve(req)
            return
        self._policy.push(req)
        if (
            self.recovery is not None
            and self.recovery.deadline_s is not None
            and self.router is None
            and req.request_id not in self._deadlines
        ):
            # Standalone mode arms its own deadlines; behind a router
            # the router owns them (a deadline must survive rerouting
            # across scheduler instances).
            self._arm_deadline(req)
        # Defer behind every other event queued at this instant so
        # simultaneous submissions (a burst, a migrated batch) are all
        # visible to the same admission pass — the legacy loop admitted
        # everything arrived at-or-before `now` in one iteration.  The
        # phase-1 guarantee (not insertion order) is what makes this
        # commute under the H002 dual replay.
        self._loop.defer(self._kick)

    # ---- the iteration engine --------------------------------------------------------

    def _kick(self) -> None:
        if self._busy or self._loop is None:
            return
        now = self._loop.now
        if self._running or self._policy.peek_ready(now) is not None:
            self._start_iteration()

    def _prefix_hit(self, req):
        """``(parent_seq_id, cached_tokens)`` when the session manager
        has a live prefix for ``req`` in this pool, else None."""
        if self.prefix_source is None:
            return None
        hit = self.prefix_source(req)
        if hit is None:
            return None
        parent, cached = hit
        return parent, min(cached, req.prefill_target)

    def _admissible(self, req) -> bool:
        worst_case = self.pool.blocks_for(req.total_tokens)
        if not self.preemption:
            return (
                self._committed_blocks + worst_case
                <= self.pool.allocator.total_blocks
            )
        target = req.prefill_target
        initial = (
            min(self.chunk_tokens, target)
            if self.prefill_mode == "chunked"
            else target
        )
        hit = self._prefix_hit(req)
        if hit is not None:
            # A prefix fork materialises `cached` tokens for free; only
            # the remainder needs fresh blocks at admission.
            initial = max(0, initial - hit[1])
        return self.pool.allocator.can_allocate(initial)

    def _admit(self, req, t: float) -> Tuple[SeqState, float]:
        """Allocate and (in blocking mode) charge the prefill; returns
        the new sequence and the seconds of prefill charged."""
        alloc = self.pool.allocator
        target = req.prefill_target
        hit = self._prefix_hit(req)
        cached = 0
        seq = SeqState(
            req=req,
            seq_id=req.request_id,
            prefill_target=target,
            admit_order=self._admit_counter,
        )
        self._admit_counter += 1
        cost = 0.0
        if hit is not None:
            # Session prefix reuse: share the prefix blocks copy-on-
            # write instead of re-prefilling them.  The fork starts with
            # the prefix's tokens resident; writes past (or into) a
            # shared tail block pay the COW copy inside append_token.
            parent, cached = hit
            alloc.fork(parent, seq.seq_id)
            seq.cached = cached
            seq.prefill_done = cached
            self.stats.cached_prefill_tokens += cached
            if self.prefill_mode != "chunked":
                for _ in range(target - cached):
                    alloc.append_token(seq.seq_id)
                seq.prefill_done = target
                if self.prefill_mode == "blocking":
                    cost = self.pool.prefill_tokens_seconds(target - cached)
                    self.stats.prefill_s += cost
                self.stats.prefill_tokens += target - cached
        elif self.prefill_mode == "chunked":
            alloc.allocate(seq.seq_id, 0)
        else:
            alloc.allocate(seq.seq_id, target)
            seq.prefill_done = target
            if self.prefill_mode == "blocking":
                cost = self.pool.prefill_tokens_seconds(target)
                self.stats.prefill_s += cost
            if self.prefill_mode != "preloaded":
                self.stats.prefill_tokens += target
        if not self.preemption:
            seq.reserved_blocks = self.pool.blocks_for(req.total_tokens)
            self._committed_blocks += seq.reserved_blocks
        if req.start_s is None:
            req.start_s = t
        self._running.append(seq)
        info = dict(
            prefill_target=target, prefill_s=cost,
            queue_s=t - req.arrival_s,
        )
        if cached:
            info["cached"] = cached
        self.trace.record(
            t, EventKind.ADMIT, seq.seq_id, self.pool.name, **info
        )
        return seq, cost

    def _victim(self, exclude: Optional[SeqState] = None) -> Optional[SeqState]:
        """Lowest-priority running sequence (vLLM's preemption order)."""
        candidates = [s for s in self._running if s is not exclude]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda s: (self._policy._key(s.req), s.admit_order),
        )

    def _preempt(self, seq: SeqState, t: float) -> int:
        freed = self.pool.allocator.free(seq.seq_id)
        self._running.remove(seq)
        self._committed_blocks -= seq.reserved_blocks
        self.stats.preemptions += 1
        self.trace.record(
            t, EventKind.PREEMPT, seq.seq_id, self.pool.name,
            freed_blocks=freed, generated=seq.req.generated,
        )
        # Recompute discipline: the request re-queues and, when
        # re-admitted, prefills prompt + already-generated tokens.
        self._policy.push(seq.req)
        return freed

    def _tail_slack(self, seq: SeqState) -> int:
        """Token slots left in the sequence's allocated blocks."""
        alloc = self.pool.allocator.sequence(seq.seq_id)
        return len(alloc.block_ids) * self.pool.block_size - alloc.tokens

    def _fit_prefill_tokens(self, seq: SeqState, want: int, t: float) -> int:
        """How many prefill tokens fit right now, preempting if allowed."""
        alloc = self.pool.allocator
        capacity = (
            alloc.free_blocks * self.pool.block_size + self._tail_slack(seq)
        )
        while capacity < want and self.preemption:
            victim = self._victim(exclude=seq)
            if victim is None:
                break
            capacity += self._preempt(victim, t) * self.pool.block_size
        return min(want, capacity)

    def _ensure_decode_capacity(
        self, decoders: List[SeqState], t: float
    ) -> List[SeqState]:
        """Guarantee one-token appends for the decode batch, shedding
        the lowest-priority sequences when the pool is dry."""
        alloc = self.pool.allocator
        while True:
            needed = sum(
                1 for s in decoders if self._tail_slack(s) == 0
            )
            if alloc.free_blocks >= needed:
                return decoders
            if not self.preemption:
                raise MemoryError(
                    f"KV pool dry: {needed} blocks needed, "
                    f"{alloc.free_blocks} free, preemption disabled — "
                    "reserve-mode admission should have prevented this"
                )
            victim = self._victim()
            if victim is None or len(self._running) <= 1:
                raise MemoryError(
                    "KV pool dry with a single running sequence — the "
                    "pool cannot hold even one worst-case request"
                )
            self._preempt(victim, t)
            decoders = [s for s in decoders if s in self._running]

    def _start_iteration(self) -> None:
        loop = self._loop
        t0 = loop.now
        t = t0  # advances past blocking prefills within the iteration
        alloc = self.pool.allocator

        # Admission: fill the batch while slots and KV admit.  Blocking
        # prefills advance the local clock, so requests arriving DURING
        # a prefill are admissible in the same iteration (the legacy
        # loop's behaviour, preserved for translation validation).
        while len(self._running) < self.pool.max_batch:
            head = self._policy.peek_ready(t)
            if head is None or not self._admissible(head):
                break  # head-of-line: later arrivals do not jump the KV wall
            self._policy.pop_ready(t)
            _, cost = self._admit(head, t)
            t += cost
        prefill_time = t - t0

        # Chunked prefill: spend the chunk budget on prefilling
        # sequences in admission order, interleaved with decode below.
        chunk_done = 0
        if self.prefill_mode == "chunked":
            budget = self.chunk_tokens
            for seq in list(self._running):
                if budget <= 0:
                    break
                if seq not in self._running:
                    continue  # preempted while an earlier chunk made room
                remaining = seq.prefill_target - seq.prefill_done
                if remaining <= 0:
                    continue
                take = self._fit_prefill_tokens(
                    seq, min(budget, remaining), t
                )
                if take <= 0:
                    continue
                for _ in range(take):
                    alloc.append_token(seq.seq_id)
                seq.prefill_done += take
                budget -= take
                chunk_done += take
                self.trace.record(
                    t, EventKind.PREFILL_CHUNK, seq.seq_id, self.pool.name,
                    tokens=take,
                    remaining=seq.prefill_target - seq.prefill_done,
                )
        chunk_time = (
            self.pool.prefill_tokens_seconds(chunk_done) if chunk_done else 0.0
        )
        if chunk_done:
            self.stats.prefill_s += chunk_time
            self.stats.prefill_tokens += chunk_done

        # Decode step for every sequence past its prefill target.
        decoders = [s for s in self._running if s.decoding]
        decode_time = 0.0
        if decoders:
            decoders = self._ensure_decode_capacity(decoders, t)
        self._iter_corrupt = False
        if decoders and self._sdc_frac > 0.0:
            # Per-iteration corruption draw, a pure hash keyed on a
            # monotone draw counter and the pool name — never a shared
            # RNG, so the verdict one iteration sees cannot depend on
            # what any other pool did (replay determinism).
            self._sdc_draws += 1
            self._iter_corrupt = (
                det_hash01(self._sdc_draws, self._pool_salt)
                < self._sdc_frac
            )
        if decoders:
            contexts = [alloc.sequence(s.seq_id).tokens for s in decoders]
            avg_context = sum(contexts) / len(decoders)
            step = self.pool.decode_step(len(decoders), avg_context)
            for seq in decoders:
                alloc.append_token(seq.seq_id)
            decode_time = step.total_s
            check_s = self._verification_cost(decode_time)
            if check_s:
                decode_time += check_s
                self.stats.verification_s += check_s
            self.stats.decode_breakdown.add(step)
            self.trace.record(
                t, EventKind.DECODE_STEP, None, self.pool.name,
                batch=len(decoders), avg_context=avg_context,
                step_s=decode_time,
            )

        total = prefill_time + chunk_time + decode_time
        if not self._running:
            return  # admission blocked on KV with an empty batch cannot
            # happen (arrival screening guarantees a lone head fits), so
            # this only means: nothing ready yet — wait for arrivals.
        if total <= 0.0:
            raise RuntimeError(
                f"iteration at t={t0:.4f}s made no progress with "
                f"{len(self._running)} running sequence(s) — the KV pool "
                "is too small for the admitted work"
            )

        self.stats.iterations += 1
        self.stats.peak_batch = max(self.stats.peak_batch, len(decoders))
        self.stats.peak_concurrency = max(
            self.stats.peak_concurrency, len(self._running)
        )
        self._busy = True
        self._iter_cost = total
        self._iter_handle = loop.schedule_at(
            t0 + total, lambda: self._finish_iteration(decoders)
        )

    def _finish_iteration(self, decoders: List[SeqState]) -> None:
        loop = self._loop
        now = loop.now
        alloc = self.pool.allocator
        self._iter_handle = None
        if self._pending_transients:
            # A transient kernel/ECC error landed during this iteration
            # and destroyed its output: recharge the full iteration time
            # and redo it.  The KV appends already happened, so the
            # rerun recomputes the same tokens without re-appending — no
            # duplication, just wasted work (which we count).
            self._pending_transients -= 1
            live = sum(1 for s in decoders if s in self._running)
            self.stats.wasted_recompute_tokens += live
            self.trace.record(
                now, EventKind.RETRY, None, self.pool.name,
                scope="iteration", lost_s=self._iter_cost, batch=live,
            )
            self._iter_handle = loop.schedule_after(
                self._iter_cost, lambda: self._finish_iteration(decoders)
            )
            return
        iter_corrupt = self._iter_corrupt
        self._iter_corrupt = False
        if (iter_corrupt or self._weights_corrupted) and any(
            s in self._running for s in decoders
        ):
            if self._handle_corrupt_iteration(
                decoders, iter_corrupt, self._weights_corrupted
            ):
                return  # detected: the iteration reruns (or the pool
                # was quarantined and the router took the victims)
        pol = self.integrity
        if pol is not None and getattr(pol, "verify_kv", False):
            if not self._verify_kv_tags(decoders):
                return  # quarantined mid-scan
        for seq in decoders:
            if seq not in self._running:
                continue  # evicted mid-iteration (timeout/cancel/crash)
            req = seq.req
            req.generated += 1
            if req.first_token_s is None:
                req.first_token_s = now
                self.trace.record(
                    now, EventKind.FIRST_TOKEN, seq.seq_id, self.pool.name,
                    ttft_s=now - req.arrival_s,
                )
            if self.stream is not None:
                self.stream.push(loop, TokenEvent(
                    t=now,
                    request_id=req.request_id,
                    index=req.generated - 1,
                    pool=self.pool.name,
                    session_id=getattr(req, "session_id", None),
                    final=req.generated >= req.output_len,
                ))
            if req.generated >= req.output_len:
                if alloc.sequence(seq.seq_id).payload_version:
                    # Completed on garbled KV that verification never
                    # looked at — the silently-served-corruption case.
                    req.corrupted = True
                if getattr(req, "corrupted", False):
                    self.stats.corrupted_completed += 1
                if self.retain_kv is not None:
                    self.retain_kv(seq.seq_id, req)
                alloc.free(seq.seq_id)
                self._committed_blocks -= seq.reserved_blocks
                self._running.remove(seq)
                req.finish_s = now
                self.stats.completed.append(req)
                self.trace.record(
                    now, EventKind.FINISH, seq.seq_id, self.pool.name,
                    latency_s=now - req.arrival_s,
                )
                self._resolve(req)
        if (
            self.snapshot_every
            and self.stats.iterations % self.snapshot_every == 0
        ):
            self.trace.snapshot(alloc, now, self.pool.name)
        self._busy = False
        self._kick()

    # ---- faults and recovery ---------------------------------------------------------
    #
    # Everything below is dead code when ``recovery`` is None and no
    # injector targets this scheduler — the no-fault event schedule is
    # bit-identical to the pre-fault runtime.

    def _arm_deadline(self, req) -> None:
        deadline = max(req.arrival_s + self.recovery.deadline_s, self._loop.now)
        handle = self._loop.schedule_at(
            deadline, lambda: self._deadline_fired(req)
        )
        self._deadlines[req.request_id] = handle

    def _deadline_fired(self, req) -> None:
        # The handle is cancelled from every terminal path, so firing
        # means the request is still live here (running or queued).
        self._deadlines.pop(req.request_id, None)
        self.evict(
            req, EventKind.TIMEOUT, self.stats.timed_out,
            reason=f"deadline {self.recovery.deadline_s}s exceeded",
        )

    def evict(self, req, kind: str, bucket: List, reason: str) -> bool:
        """Terminally remove a live request (running or waiting) with a
        trace record; returns False when the request is not here (e.g.
        it sits in a router's backoff window)."""
        now = self._loop.now
        seq = next((s for s in self._running if s.req is req), None)
        if seq is not None:
            # Tokens materialised in KV are discarded — wasted work.
            tokens = self.pool.allocator.sequence(seq.seq_id).tokens
            self.pool.allocator.free(seq.seq_id)
            self._committed_blocks -= seq.reserved_blocks
            self._running.remove(seq)
            self.stats.wasted_recompute_tokens += tokens
        elif self._policy.remove(req.request_id) is None:
            return False
        self.trace.record(
            now, kind, req.request_id, self.pool.name, reason=reason
        )
        bucket.append(req)
        self._resolve(req)
        return True

    def cancel_request(self, request_id: int) -> bool:
        """Client abort / injected cancellation of a live request."""
        for seq in self._running:
            if seq.req.request_id == request_id:
                return self.evict(
                    seq.req, EventKind.CANCEL, self.stats.cancelled,
                    reason="client cancelled",
                )
        removed = self._policy.remove(request_id)
        if removed is None:
            return False
        self.trace.record(
            self._loop.now, EventKind.CANCEL, request_id, self.pool.name,
            reason="client cancelled",
        )
        self.stats.cancelled.append(removed)
        self._resolve(removed)
        return True

    def transient_error(self) -> None:
        """A recoverable kernel/ECC error: the in-flight iteration's
        output is lost and the iteration reruns; an idle pool shrugs."""
        self.stats.faults += 1
        if self._busy:
            self._pending_transients += 1
            effect = "rerun_iteration"
        else:
            effect = "noop_idle"
        self.trace.record(
            self._loop.now, EventKind.FAULT, None, self.pool.name,
            fault="transient", effect=effect,
        )

    # ---- silent data corruption --------------------------------------------------------
    #
    # Unlike every fault above, nothing below raises an error signal:
    # outputs are plausible-but-wrong.  With ``integrity`` unset the
    # scheduler serves them (ground truth lands in ``req.corrupted`` /
    # ``stats.corrupted_completed``); with verification on, each is
    # caught at a modelled cost and the work redone.

    def _verification_cost(self, step_s: float) -> float:
        """Modelled per-iteration verification seconds: the ABFT
        checksum over the decode SpMMs plus the KV content-tag scan,
        each a fraction of the step it protects."""
        pol = self.integrity
        if pol is None:
            return 0.0
        frac = 0.0
        if getattr(pol, "verify_kernels", False):
            frac += getattr(pol, "kernel_check_cost_frac", 0.0)
        if getattr(pol, "verify_kv", False):
            frac += getattr(pol, "kv_check_cost_frac", 0.0)
        return step_s * frac

    def _handle_corrupt_iteration(
        self, decoders: List[SeqState],
        iter_corrupt: bool, weights_corrupt: bool,
    ) -> bool:
        """A silent fault garbled this iteration's decode outputs.
        Returns True when verification caught it (the caller must not
        grant the tokens: the iteration reruns, or the pool was
        quarantined out from under us)."""
        loop = self._loop
        now = loop.now
        live = [s for s in decoders if s in self._running]
        pol = self.integrity
        if iter_corrupt:
            # One injected corruption event per corrupted iteration;
            # weight flips were counted once at flip time.
            self.stats.sdc_injected += 1
            self.trace.record(
                now, EventKind.CORRUPT, None, self.pool.name,
                source="sdc_iteration", batch=len(live),
            )
        detected = pol is not None and (
            (iter_corrupt and getattr(pol, "verify_kernels", False))
            or (weights_corrupt and getattr(pol, "verify_weights", False))
        )
        if not detected:
            # Silent: the wrong tokens are served as if correct.
            for seq in live:
                seq.req.corrupted = True
            return False
        # ABFT checksum / weight-digest mismatch: discard the output
        # and redo the iteration (reloading the weights first when they
        # are the cause).  While an SDC window is open the rerun draws
        # its own corruption verdict — a flaky replica stays flaky.
        source = "weights" if weights_corrupt else "kernel"
        reload_s = 0.0
        if weights_corrupt:
            self._weights_corrupted = False
            reload_s = float(getattr(pol, "weight_reload_s", 0.0))
        self.stats.sdc_detected += 1
        self.stats.wasted_recompute_tokens += len(live)
        self.stats.verification_s += reload_s
        self.trace.record(
            now, EventKind.CORRUPT_DETECTED, None, self.pool.name,
            source=source, batch=len(live), reload_s=reload_s,
        )
        if self.router is not None:
            self.router.on_corruption_detected(self)
            if self.failed:
                return True  # quarantined: fail_pool rerouted the batch
        if self._sdc_frac > 0.0:
            self._sdc_draws += 1
            self._iter_corrupt = (
                det_hash01(self._sdc_draws, self._pool_salt)
                < self._sdc_frac
            )
        self._iter_handle = loop.schedule_after(
            self._iter_cost + reload_s,
            lambda: self._finish_iteration(decoders),
        )
        return True

    def _verify_kv_tags(self, decoders: List[SeqState]) -> bool:
        """Content-tag check over every sequence this step read.  A
        mismatch means the KV was garbled in place: drop the poisoned
        cache and recompute from the prompt (preemption's recompute
        discipline) instead of serving wrong context.  Returns False
        when a detection quarantined the pool mid-scan."""
        alloc = self.pool.allocator
        now = self._loop.now
        for seq in decoders:
            if seq not in self._running:
                continue
            if alloc.sequence(seq.seq_id).payload_version == 0:
                continue
            self.stats.sdc_detected += 1
            self.trace.record(
                now, EventKind.CORRUPT_DETECTED, seq.seq_id,
                self.pool.name, source="kv_tag",
                tokens=alloc.sequence(seq.seq_id).tokens,
            )
            self._preempt(seq, now)
            if self.router is not None:
                self.router.on_corruption_detected(self)
                if self.failed:
                    return False
        return True

    def corrupt_weights(self) -> None:
        """A bit flips in the pool's resident encoded weights: every
        decode from now on is silently wrong, until the per-tile digest
        check (``verify_weights``) catches the mismatch and reloads the
        weights at ``weight_reload_s`` cost."""
        if not self.pool.alive:
            return
        self.stats.faults += 1
        self.stats.sdc_injected += 1
        self._weights_corrupted = True
        self.trace.record(
            self._loop.now, EventKind.CORRUPT, None, self.pool.name,
            source="weight_bit_flip",
        )

    def corrupt_resident_kv(self) -> None:
        """Garble the lowest live sequence's KV in place (its content
        tag no longer matches); a no-op when nothing is resident."""
        if not self.pool.alive or not self._running:
            return
        victim = min(self._running, key=lambda s: s.seq_id)
        self.pool.allocator.corrupt_sequence(victim.seq_id)
        self.stats.faults += 1
        self.stats.sdc_injected += 1
        self.trace.record(
            self._loop.now, EventKind.CORRUPT, victim.seq_id,
            self.pool.name, source="kv_corruption",
        )

    def begin_sdc_window(self, frac: float, duration_s: float) -> None:
        """The replica goes flaky: each decode iteration is corrupted
        with probability ``frac`` until :meth:`end_sdc_window`."""
        self.stats.faults += 1
        self._sdc_frac = frac
        self.trace.record(
            self._loop.now, EventKind.FAULT, None, self.pool.name,
            fault="sdc_replica", frac=frac, duration_s=duration_s,
        )

    def end_sdc_window(self) -> None:
        if self._sdc_frac == 0.0:
            return
        self._sdc_frac = 0.0
        if not self.pool.alive:
            return
        self.trace.record(
            self._loop.now, EventKind.RECOVER, None, self.pool.name,
        )

    def fail_pool(self, reason: str = "gpu_crash") -> None:
        """The pool's GPUs crash: all resident KV is lost, the in-flight
        iteration never completes, and every live request either fails
        terminally (standalone) or goes back to the router for
        retry/reroute with recompute-from-prompt."""
        if self.failed:
            return
        now = self._loop.now
        self.failed = True
        self.pool.fail()
        self.stats.faults += 1
        self.trace.record(
            now, EventKind.FAULT, None, self.pool.name,
            fault="gpu_crash", reason=reason,
        )
        if self._iter_handle is not None:
            self._loop.cancel(self._iter_handle)
            self._iter_handle = None
        self._busy = False
        self._pending_transients = 0
        # A crash wipes the silent-fault state with everything else —
        # a healed replica comes back with fresh weights and no KV.
        self._iter_corrupt = False
        self._weights_corrupted = False
        self._sdc_frac = 0.0
        victims = [s.req for s in self._running]
        for seq in self._running:
            self.stats.wasted_recompute_tokens += (
                self.pool.allocator.sequence(seq.seq_id).tokens
            )
        self.pool.allocator.free_all()
        self._running.clear()
        self._committed_blocks = 0
        while True:
            queued = self._policy.pop_ready(now)
            if queued is None:
                break
            victims.append(queued)
        for req in victims:
            if self.router is not None:
                self.router.on_pool_failure(req, self)
            else:
                self.trace.record(
                    now, EventKind.FAIL, req.request_id, self.pool.name,
                    reason="pool crashed",
                )
                self.stats.failed.append(req)
                self._resolve(req)

    def _resolve(self, req) -> None:
        """Terminal bookkeeping shared by every exit path: disarm the
        deadline and tell the router (if any) the request is done."""
        handle = self._deadlines.pop(req.request_id, None)
        if handle is not None:
            self._loop.cancel(handle)
        if self.router is not None:
            self.router.on_terminal(req)


class DisaggregatedRuntime:
    """Two pools, one clock: prefill on A, migrate KV, decode on B.

    The prefill pool batches arrived requests FCFS and runs whole-batch
    prefills; each finished batch triggers a timed KV-migration event
    sized by ``migration_seconds(tokens)``; on migration completion the
    requests join the decode pool's scheduler in ``preloaded`` mode
    (their KV materialises at admission with no recompute cost).
    """

    def __init__(
        self,
        prefill_pool: GPUPool,
        decode_pool: GPUPool,
        migration_seconds: Callable[[int], float],
        decode_policy: str = "fcfs",
        snapshot_every: int = 0,
        recovery=None,
        loop: Optional[EventLoop] = None,
        integrity=None,
    ) -> None:
        self.prefill_pool = prefill_pool
        self.decode_pool = decode_pool
        self.migration_seconds = migration_seconds
        self.recovery = recovery
        #: Optional integrity policy (duck-typed); with ``verify_kv``
        #: on, every migration is tag-checked on receive.
        self.integrity = integrity
        self.loop = loop if loop is not None else EventLoop()
        self.trace = RuntimeTrace()
        self.decode_sched = ContinuousBatchingScheduler(
            decode_pool,
            policy=decode_policy,
            prefill_mode="preloaded",
            snapshot_every=snapshot_every,
        ).attach(self.loop, self.trace)
        self.decode_sched.integrity = integrity
        self.prefill_breakdown = PhaseBreakdown()
        self.kv_migration_s = 0.0
        self.snapshot_every = snapshot_every
        self._arrived: List[Tuple[float, int, object]] = []
        self._prefill_busy = False
        self._migrations = 0
        self._migration_faults = 0
        self._kv_corruptions = 0

    # ---- prefill pool ----------------------------------------------------------------

    def _on_arrival(self, req) -> None:
        now = self.loop.now
        self.trace.record(
            now, EventKind.ARRIVE, req.request_id, self.prefill_pool.name,
            prompt=req.prompt_len, output=req.output_len,
        )
        heapq.heappush(self._arrived, (req.arrival_s, req.request_id, req))
        # Defer the kick behind every other event queued at this instant
        # so simultaneous arrivals prefill as ONE batch (the closed-form
        # behaviour), not as a 1-request batch plus a remainder.
        self.loop.defer(self._kick_prefill)

    def _kick_prefill(self) -> None:
        if self._prefill_busy or not self._arrived:
            return
        now = self.loop.now
        batch = []
        while self._arrived and len(batch) < self.prefill_pool.max_batch:
            batch.append(heapq.heappop(self._arrived)[2])
        for req in batch:
            self.prefill_pool.allocator.allocate(
                req.request_id, req.prompt_len
            )
            if req.start_s is None:
                req.start_s = now
        mean_prompt = round(
            sum(r.prompt_len for r in batch) / len(batch)
        )
        phase = self.prefill_pool.prefill_breakdown(len(batch), mean_prompt)
        self.prefill_breakdown.add(phase)
        self.trace.record(
            now, EventKind.ADMIT, None, self.prefill_pool.name,
            batch=len(batch), prefill_s=phase.total_s,
        )
        self._prefill_busy = True
        self.loop.schedule_after(
            phase.total_s, lambda: self._finish_prefill(batch)
        )

    def _finish_prefill(self, batch: List) -> None:
        now = self.loop.now
        tokens = sum(r.prompt_len for r in batch)
        duration = self.migration_seconds(tokens)
        self.kv_migration_s += duration
        self.trace.record(
            now, EventKind.MIGRATE_START, None, self.prefill_pool.name,
            tokens=tokens, migration_s=duration, batch=len(batch),
        )
        # The compute pool frees up immediately; the batch's blocks stay
        # pinned until the transfer lands on the decode side.
        self._prefill_busy = False
        self.loop.schedule_after(
            duration, lambda: self._finish_migration(batch)
        )
        self._kick_prefill()

    def migration_fault(self) -> None:
        """Arm one migration failure: the next migration completion is
        lost in flight and must be retried (recovery permitting) or the
        batch fails terminally."""
        self._migration_faults += 1
        self.decode_sched.stats.faults += 1
        self.trace.record(
            self.loop.now, EventKind.FAULT, None, self.decode_pool.name,
            fault="migration",
        )

    def kv_corruption(self) -> None:
        """Arm one in-flight corruption: the next migration completion
        arrives garbled.  Unlike :meth:`migration_fault` nothing is
        LOST — unverified, the poisoned cache silently becomes the
        whole batch's decode context."""
        self._kv_corruptions += 1
        self.decode_sched.stats.faults += 1
        self.trace.record(
            self.loop.now, EventKind.FAULT, None, self.decode_pool.name,
            fault="kv_corruption",
        )

    def _finish_migration(self, batch: List, attempt: int = 1) -> None:
        now = self.loop.now
        stats = self.decode_sched.stats
        if self._migration_faults > 0:
            self._migration_faults -= 1
            self.trace.record(
                now, EventKind.MIGRATE_FAIL, None, self.decode_pool.name,
                batch=len(batch), attempt=attempt,
            )
            tokens = sum(r.prompt_len for r in batch)
            retryable = (
                self.recovery is not None
                and self.recovery.mode != "fail_fast"
                and attempt <= self.recovery.max_retries
            )
            if retryable:
                # Re-send the same cache across the link after backoff;
                # the prefill-side blocks stay pinned for the resend.
                stats.retries += 1
                resend = self.migration_seconds(tokens)
                delay = resend + self.recovery.backoff_s(
                    attempt, batch[0].request_id
                )
                self.kv_migration_s += resend
                self.trace.record(
                    now, EventKind.RETRY, None, self.decode_pool.name,
                    scope="migration", attempt=attempt, delay_s=delay,
                )
                self.loop.schedule_after(
                    delay, lambda: self._finish_migration(batch, attempt + 1)
                )
                return
            # Terminal: the prefilled cache is gone — count it wasted.
            stats.wasted_recompute_tokens += tokens
            for req in batch:
                self.prefill_pool.allocator.free(req.request_id)
                self.trace.record(
                    now, EventKind.FAIL, req.request_id,
                    self.decode_pool.name, reason="kv migration lost",
                )
                stats.failed.append(req)
            return
        if self._kv_corruptions > 0:
            self._kv_corruptions -= 1
            stats.sdc_injected += 1
            self.trace.record(
                now, EventKind.CORRUPT, None, self.decode_pool.name,
                source="kv_migration", batch=len(batch), attempt=attempt,
            )
            pol = self.integrity
            if pol is not None and getattr(pol, "verify_kv", False):
                # Content-tag mismatch on receive: the cache arrived
                # garbled.  Drop it and re-send from the still-pinned
                # prefill blocks — recompute-from-source, NOT a retry-
                # budget question (the data is known bad), so this path
                # never fails the batch terminally.
                stats.sdc_detected += 1
                tokens = sum(r.prompt_len for r in batch)
                resend = self.migration_seconds(tokens)
                check_s = resend * getattr(pol, "kv_check_cost_frac", 0.0)
                stats.verification_s += check_s
                stats.retries += 1
                self.kv_migration_s += resend
                self.trace.record(
                    now, EventKind.CORRUPT_DETECTED, None,
                    self.decode_pool.name, source="kv_tag",
                    batch=len(batch), resend_s=resend,
                )
                self.loop.schedule_after(
                    resend + check_s,
                    lambda: self._finish_migration(batch, attempt + 1),
                )
                return
            # Silent: the garbled cache becomes the batch's context.
            for req in batch:
                req.corrupted = True
        self._migrations += 1
        for req in batch:
            self.prefill_pool.allocator.free(req.request_id)
        if self.snapshot_every:
            self.trace.snapshot(
                self.prefill_pool.allocator, now, self.prefill_pool.name
            )
        self.trace.record(
            now, EventKind.MIGRATE_END, None, self.decode_pool.name,
            batch=len(batch),
        )
        for req in batch:
            self.decode_sched.submit(req)

    # ---- entry point -----------------------------------------------------------------

    def run(self, requests: Sequence) -> RuntimeStats:
        if not requests:
            raise ValueError("empty workload")
        for req in sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        ):
            self.loop.schedule_at(
                req.arrival_s,
                (lambda r: lambda: self._on_arrival(r))(req),
            )
        self.loop.run()
        stats = self.decode_sched.finalize()
        stats.prefill_s = self.prefill_breakdown.total_s
        stats.trace = self.trace
        return stats
