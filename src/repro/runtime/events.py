"""Event vocabulary of the discrete-event runtime.

Two kinds of record live here:

* **Loop events** — things scheduled on the :class:`~repro.runtime.core.
  EventLoop`'s clock (request arrivals, iteration completions, KV
  migrations).  The loop stores them as ``(time, seq, callback)`` heap
  entries; :data:`EventKind` names the callbacks so traces stay
  greppable.
* **Trace events** — the append-only log the scheduler emits as it
  makes decisions.  The log is the runtime's observable behaviour: two
  runs of the same trace and configuration must produce *identical*
  logs (the determinism contract tests/test_runtime.py pins down), and
  the KV snapshots referenced from it are what ``repro lint`` audits
  with the K-rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

__all__ = ["EventKind", "TraceEvent"]

_Scalar = Union[int, float, str]


class EventKind:
    """Stable names for everything the runtime logs.

    Plain string constants (not an Enum) so trace JSON stays readable
    and forward-compatible: consumers match on the string.
    """

    ARRIVE = "arrive"
    REJECT = "reject"
    ADMIT = "admit"
    PREFILL_CHUNK = "prefill_chunk"
    DECODE_STEP = "decode_step"
    FIRST_TOKEN = "first_token"
    PREEMPT = "preempt"
    FINISH = "finish"
    MIGRATE_START = "migrate_start"
    MIGRATE_END = "migrate_end"
    SNAPSHOT = "snapshot"
    # ---- faults and recovery (repro.runtime.faults) -------------------
    #: An injected fault landed (``info["fault"]`` names the kind).
    FAULT = "fault"
    #: A straggling pool returned to nominal speed.
    RECOVER = "recover"
    #: A migration attempt was lost in flight.
    MIGRATE_FAIL = "migrate_fail"
    #: A request missed its deadline and was evicted.
    TIMEOUT = "timeout"
    #: A request was cancelled (client abort or injected cancellation).
    CANCEL = "cancel"
    #: Admission-level load shedding: rejected with a reason, not queued.
    SHED = "shed"
    #: A failed request re-enters service after backoff.
    RETRY = "retry"
    #: A failed request was re-routed to a surviving pool.
    REROUTE = "reroute"
    #: A request exhausted its recovery options and failed terminally.
    FAIL = "fail"
    # ---- silent data corruption (repro.integrity) ---------------------
    #: A silent corruption landed (``info["source"]``: sdc_iteration /
    #: weight_bit_flip / kv_corruption / kv_migration).  Unlike FAULT,
    #: nothing errored — the data is just wrong.
    CORRUPT = "corrupt"
    #: Verification (ABFT checksum, weight digest, KV content tag)
    #: caught a corruption before it was served.
    CORRUPT_DETECTED = "corrupt_detected"
    #: The router quarantined a replica after repeated detections.
    QUARANTINE = "quarantine"


@dataclass(frozen=True)
class TraceEvent:
    """One logged scheduler decision.

    ``info`` holds small scalars only (counts, token numbers, reasons);
    anything bulky — block tables, refcounts — goes into a
    :class:`~repro.runtime.trace.KVSnapshot` instead, referenced by
    index from a ``snapshot`` event.
    """

    t: float
    kind: str
    seq_id: Optional[int] = None
    pool: str = "gpu0"
    info: Dict[str, _Scalar] = field(default_factory=dict)

    def key(self) -> Tuple:
        """Canonical comparison key: the full observable content.

        Used by the determinism tests — two runs are equivalent iff the
        event-key sequences are equal.
        """
        return (
            self.t,
            self.kind,
            self.seq_id,
            self.pool,
            tuple(sorted(self.info.items())),
        )

    def write_keys(self) -> Tuple[Tuple[str, object], ...]:
        """State locations this event's emitter touched.

        The H-family happens-before analysis treats every trace event
        emitted during a dispatch as evidence of a write: per-sequence
        events touch ``(pool, seq_id)``; pool-level events (faults,
        recoveries, snapshots) touch the whole pool, modelled as the
        wildcard ``(pool, "*")`` which intersects every key on that
        pool.
        """
        if self.seq_id is None:
            return ((self.pool, "*"),)
        return ((self.pool, self.seq_id),)
