"""Discrete-event simulation runtime for serving-layer experiments.

The serving and disaggregation simulators used to be two unrelated
programs: a hand-rolled ``while`` loop with token-arithmetic admission,
and a closed-form three-term sum.  This package extracts what they
share — an explicit clock, a deterministic event queue, a per-GPU
resource model backed by the paged KV allocator — and re-expresses both
as *policies* over that core:

* :mod:`~repro.runtime.core` — :class:`EventLoop` (clock + event queue
  with deterministic tie-breaking) and :class:`GPUPool` (inference cost
  model + :class:`~repro.llm.kv_cache.KVBlockAllocator` as the single
  source of KV truth);
* :mod:`~repro.runtime.events` — the event vocabulary and trace records;
* :mod:`~repro.runtime.policies` — heap-based FCFS / SJF admission
  queues (O(log n) push/pop, replacing the legacy O(n²) list scans);
* :mod:`~repro.runtime.scheduler` — continuous batching with blocking
  or chunked prefill and preemption-by-recompute, plus the two-pool
  disaggregated composition with KV-migration events;
* :mod:`~repro.runtime.trace` — the event log and K-rule-auditable
  allocator snapshots.

See docs/RUNTIME.md for the event loop contract, the scheduler modes
and the trace format.
"""

from .core import EventLoop, GPUPool
from .events import EventKind, TraceEvent
from .faults import (
    ALL_FAULT_KINDS,
    BROKEN_RECOVERY_POLICIES,
    RECOVERY_POLICIES,
    SILENT_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultTolerantRuntime,
    RecoveryPolicy,
    builtin_fault_plans,
    get_recovery_policy,
)
from .policies import POLICIES, AdmissionPolicy, FCFSPolicy, SJFPolicy, get_policy
from .request import SessionRequest, TokenEvent, TokenStream
from .schedule_log import ScheduleLog, ScheduleRecord, ScheduleRecorder
from .scheduler import (
    PREFILL_MODES,
    ContinuousBatchingScheduler,
    DisaggregatedRuntime,
    RuntimeStats,
    SeqState,
)
from .trace import KVSnapshot, RuntimeTrace

__all__ = [
    "EventLoop",
    "GPUPool",
    "EventKind",
    "TraceEvent",
    "SessionRequest",
    "TokenEvent",
    "TokenStream",
    "POLICIES",
    "AdmissionPolicy",
    "FCFSPolicy",
    "SJFPolicy",
    "get_policy",
    "PREFILL_MODES",
    "ContinuousBatchingScheduler",
    "DisaggregatedRuntime",
    "RuntimeStats",
    "SeqState",
    "KVSnapshot",
    "RuntimeTrace",
    "ScheduleLog",
    "ScheduleRecord",
    "ScheduleRecorder",
    "FaultKind",
    "ALL_FAULT_KINDS",
    "SILENT_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultTolerantRuntime",
    "RecoveryPolicy",
    "RECOVERY_POLICIES",
    "BROKEN_RECOVERY_POLICIES",
    "builtin_fault_plans",
    "get_recovery_policy",
]
