"""Extension experiment: disaggregated prefill/decode deployments."""

from __future__ import annotations

from typing import List

from ..llm.disaggregation import DEPLOYMENT_COMPARISONS, compare_deployments
from .harness import Experiment

__all__ = ["ext_disaggregation"]


def ext_disaggregation(
    model: str = "opt-13b",
    prompt_len: int = 2048,
    output_len: int = 128,
) -> Experiment:
    """Homogeneous vs hybrid pools at equal GPU budget (1 prefill + 1
    decode GPU), long-prompt workload."""
    results = compare_deployments(
        model=model, prompt_len=prompt_len, output_len=output_len
    )
    rows: List[List[object]] = []
    for label in DEPLOYMENT_COMPARISONS:
        r = results[label]
        rows.append(
            [
                label,
                r.prefill.total_s,
                r.kv_migration_s,
                r.decode.total_s,
                r.total_s,
                r.tokens_per_second,
            ]
        )
    hybrid = results["dense-prefill + spinfer-decode"]
    return Experiment(
        exp_id="ext_disagg",
        title=f"Disaggregated prefill/decode, {model}, prompt {prompt_len}",
        headers=["deployment", "prefill_s", "kv_migration_s", "decode_s",
                 "total_s", "tokens_per_s"],
        rows=rows,
        metrics={
            "hybrid_speedup_vs_dense": (
                results["dense/dense"].total_s / hybrid.total_s
            ),
            "hybrid_speedup_vs_spinfer": (
                results["spinfer/spinfer"].total_s / hybrid.total_s
            ),
            "kv_migration_share": hybrid.kv_migration_s / hybrid.total_s,
        },
        notes=(
            "Extension quantifying paper Section 6: dense GEMM serves the "
            "compute-bound prefill, SpInfer the memory-bound decode; the "
            "KV migration toll stays small relative to either phase."
        ),
    )
