"""Experiment harness: tables, series and result persistence.

Every reproduced table/figure is computed by a function in this package
returning an :class:`Experiment` — a set of labelled rows (tables) or
series (figures) plus headline metrics.  The benchmark suite renders each
one as text and stores it under ``results/`` so paper-vs-measured
comparisons (EXPERIMENTS.md) are regenerable from a single run.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["Experiment", "format_table", "results_dir", "geomean"]

Number = Union[int, float]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional aggregate for speedup ratios."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned fixed-width text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


@dataclass
class Experiment:
    """One reproduced table or figure."""

    exp_id: str  # e.g. "fig10", "tab01"
    title: str
    headers: List[str]
    rows: List[List[object]]
    #: Headline scalars (e.g. {"avg_speedup_vs_cublas": 1.79}).
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        parts = [f"# {self.exp_id}: {self.title}", ""]
        parts.append(format_table(self.headers, self.rows))
        if self.metrics:
            parts.append("")
            for key in sorted(self.metrics):
                parts.append(f"{key} = {self.metrics[key]:.4g}")
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts) + "\n"

    def save(self, directory: Optional[str] = None) -> str:
        """Write the rendered experiment to ``results/<exp_id>.txt``."""
        directory = directory or results_dir()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.exp_id}.txt")
        with open(path, "w") as fh:
            fh.write(self.render())
        return path

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"experiment {self.exp_id} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None


def results_dir() -> str:
    """Directory experiment outputs are written to.

    Defaults to ``<repo>/results``; override with ``REPRO_RESULTS_DIR``.
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "results")
