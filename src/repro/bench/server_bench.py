"""Multi-turn serving experiment: session prefix reuse vs re-prefill.

Extension experiment (no paper counterpart, but the natural next step
after the serving and chaos benches): chat workloads re-send their
whole history every turn, so decode-phase wins compound with *prefill
avoided* — the session prefix cache forks the previous turn's KV
copy-on-write instead of re-prefilling it.  This experiment runs the
IDENTICAL pinned session workload twice per scenario — prefix reuse on
vs off — and tabulates prefill tokens actually charged, TTFT
percentiles and makespan.  Everything else (seeds, policies, routing,
fault plan) is held fixed, so the two arms differ only by the cache.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..server import ServerConfig, run_server
from .harness import Experiment

__all__ = ["ext_server"]


def _arm(cfg: ServerConfig) -> Tuple[object, object]:
    return run_server(cfg)


def ext_server(
    scenarios: Optional[Sequence[Tuple[str, ServerConfig]]] = None,
    quick: bool = False,
) -> Experiment:
    """Prefix reuse on/off over identical multi-turn workloads."""
    if scenarios is None:
        base = ServerConfig()
        scenarios = [
            ("steady", base),
            ("long-history", replace(
                base, mean_new_tokens=192, turns=4, sessions=6,
            )),
            ("gpu-crash", replace(base, fault_plan="gpu-crash")),
        ]
    rows: List[List[object]] = []
    metrics = {}
    for label, cfg in scenarios:
        if quick:
            cfg = cfg.quick()
        per_arm = {}
        for reuse in (True, False):
            server, stats = _arm(replace(cfg, reuse_prefix=reuse))
            ttfts = sorted(
                r.ttft_s for r in stats.completed if r.ttft_s is not None
            )
            p99 = ttfts[max(0, -(-99 * len(ttfts) // 100) - 1)] if ttfts else 0.0
            per_arm[reuse] = (server, stats, p99)
            rows.append([
                label,
                "reuse" if reuse else "no-reuse",
                len(stats.completed),
                stats.prefill_tokens,
                stats.cached_prefill_tokens,
                server.sessions.hits,
                p99,
                stats.makespan_s,
            ])
        _, on_stats, on_p99 = per_arm[True]
        _, off_stats, off_p99 = per_arm[False]
        if off_stats.prefill_tokens:
            metrics[f"{label}_prefill_tokens_saved_frac"] = (
                1.0 - on_stats.prefill_tokens / off_stats.prefill_tokens
            )
        if off_p99 > 0:
            metrics[f"{label}_p99_ttft_speedup"] = off_p99 / on_p99 if on_p99 else 0.0
    return Experiment(
        exp_id="ext_server",
        title="Session prefix reuse vs full re-prefill (identical seeds)",
        headers=["scenario", "arm", "done", "prefill_tok", "cached_tok",
                 "hits", "p99_ttft_s", "makespan_s"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): each scenario "
            "replays the same pinned multi-turn session workload with the "
            "prefix cache on vs off; every other knob is identical.  "
            "Reuse forks the previous turn's KV copy-on-write, so later "
            "turns charge only their new tokens — cutting both total "
            "prefill work and the p99 time-to-first-token that re-"
            "prefilling a growing history would impose.  The gpu-crash "
            "scenario shows the cache degrading safely: a crashed pool's "
            "prefixes invalidate lazily and the affected sessions fall "
            "back to full recompute without losing correctness."
        ),
    )
