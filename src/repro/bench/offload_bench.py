"""Extension experiment: TCA-BME under weight offloading (§2.3 claim)."""

from __future__ import annotations

from typing import List

from ..llm.inference import InferenceConfig, InferenceEngine
from ..llm.offloading import offloaded_decode_step_seconds, plan_offload
from .harness import Experiment

__all__ = ["ext_offloading"]


def ext_offloading(model: str = "opt-66b", gpu: str = "RTX4090") -> Experiment:
    """Offloaded decode of a model too big for one GPU, dense vs encoded."""
    rows: List[List[object]] = []
    step_times = {}
    for fmt, framework, sparsity in (
        ("dense", "fastertransformer", 0.0),
        ("tca-bme", "spinfer", 0.6),
    ):
        plan = plan_offload(model, fmt, sparsity, gpu, batch_size=8,
                            context_len=512)
        engine = InferenceEngine(
            InferenceConfig(
                model=model, framework=framework, gpu=gpu, num_gpus=1,
                batch_size=8, prompt_len=64, output_len=64, sparsity=sparsity,
            )
        )
        compute = engine.decode_step_seconds(batch=8, context=320).total_s
        step = offloaded_decode_step_seconds(plan, compute, gpu_name=gpu)
        step_times[fmt] = step
        rows.append(
            [
                fmt,
                plan.resident_layers,
                plan.streamed_layers,
                plan.streamed_bytes_per_step / 1e9,
                compute,
                step,
                8.0 / step,
            ]
        )
    return Experiment(
        exp_id="ext_offload",
        title=f"Offloaded decode: {model} on one {gpu}",
        headers=["weights", "resident_layers", "streamed_layers",
                 "pcie_GB_per_step", "compute_s", "step_s", "tokens_per_s"],
        rows=rows,
        metrics={
            "speedup_tca_bme": step_times["dense"] / step_times["tca-bme"],
        },
        notes=(
            "Extension quantifying §2.3: offloaded decode is PCIe-bound, so "
            "TCA-BME's compression multiplies throughput — it both pins "
            "more layers on-GPU and shrinks every streamed byte."
        ),
    )
