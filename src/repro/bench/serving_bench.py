"""Serving-orthogonality experiment (paper Section 2.3's claim).

The paper says SpInfer "is orthogonal to these serving systems and can
complement and improve their performance".  This experiment serves one
Poisson request trace under Orca-style continuous batching on a single
RTX4090 and compares frameworks on throughput, latency and KV headroom.
"""

from __future__ import annotations

import copy
from typing import List

from ..llm.serving import (
    ServingConfig,
    ServingSimulator,
    compare_frameworks,
    mixed_workload,
    poisson_workload,
)
from .harness import Experiment

__all__ = ["ext_serving", "ext_serving_runtime"]


def ext_serving(
    num_requests: int = 32,
    arrival_rate: float = 1.5,
    model: str = "opt-13b",
) -> Experiment:
    """Continuous-batching comparison on one RTX4090."""
    workload = poisson_workload(
        num_requests=num_requests,
        arrival_rate=arrival_rate,
        prompt_len=64,
        output_len=128,
        seed=0,
    )
    results = compare_frameworks(workload, model=model, num_gpus=1, max_batch=32)
    rows: List[List[object]] = []
    for fw, stats in sorted(results.items()):
        rows.append(
            [
                fw,
                stats.throughput_tokens_per_s,
                stats.mean_latency_s,
                stats.latency_percentile(95),
                stats.peak_batch,
                stats.kv_budget_bytes / 1e9,
            ]
        )
    metrics = {}
    if "spinfer" in results and "flash-llm" in results:
        sp, fl = results["spinfer"], results["flash-llm"]
        metrics["throughput_gain_vs_flash_llm"] = (
            sp.throughput_tokens_per_s / fl.throughput_tokens_per_s
        )
        metrics["latency_gain_vs_flash_llm"] = (
            fl.mean_latency_s / sp.mean_latency_s
        )
        metrics["kv_headroom_vs_flash_llm"] = (
            sp.kv_budget_bytes / fl.kv_budget_bytes
        )
    metrics["dense_frameworks_fit"] = float(
        "fastertransformer" in results or "deepspeed" in results
    )
    return Experiment(
        exp_id="ext_serving",
        title=f"Continuous batching, {model} on 1x RTX4090",
        headers=["framework", "tokens_per_s", "mean_lat_s", "p95_lat_s",
                 "peak_batch", "kv_budget_gb"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): SpInfer's weight "
            "compression both speeds decode steps and frees KV headroom, "
            "so it helps a continuous-batching server on both axes; dense "
            "frameworks cannot even host OPT-13B on one 24 GB GPU."
        ),
    )


def ext_serving_runtime(
    num_requests: int = 48,
    arrival_rate: float = 6.0,
    model: str = "opt-13b",
    framework: str = "spinfer",
    kv_cap_tokens: int = 4096,
) -> Experiment:
    """Scheduler shoot-out on the event runtime at an equal, tight KV budget.

    Serves one bursty mixed-length trace three ways on the same pool:
    the legacy discipline (blocking prefill, worst-case reservation),
    chunked prefill alone, and chunked prefill + preemption-by-recompute
    (on-demand admission).  The KV pool is capped well below the DRAM
    budget so admission — not compute — is the bottleneck; that is the
    regime where reservation-based admission stalls the queue and the
    vLLM-style discipline wins tail latency.

    Also translation-validates the runtime: on an uncapped FCFS /
    blocking / no-preemption configuration it must reproduce the legacy
    hand-rolled loop's makespan within 1 %.
    """
    workload = mixed_workload(
        num_requests,
        arrival_rate=arrival_rate,
        output_lens=(64, 256, 768),
        prompt_len=128,
        seed=7,
    )
    base = dict(
        model=model, framework=framework, max_batch=16,
        kv_cap_tokens=kv_cap_tokens,
    )
    schedulers = (
        ("blocking+reserve", ServingConfig(**base)),
        ("chunked", ServingConfig(
            **base, chunked_prefill=True, chunk_tokens=256,
        )),
        ("chunked+preempt", ServingConfig(
            **base, chunked_prefill=True, chunk_tokens=256, preemption=True,
        )),
    )
    results = {}
    rows: List[List[object]] = []
    for name, cfg in schedulers:
        stats = ServingSimulator(cfg).run(copy.deepcopy(workload))
        results[name] = stats
        rows.append([
            name,
            stats.throughput_tokens_per_s,
            stats.mean_latency_s,
            stats.latency_percentile(99),
            stats.ttft_percentile(99),
            stats.preemptions,
            len(stats.completed),
        ])

    # Translation validation: event runtime vs the legacy loop, uncapped.
    legacy_cfg = ServingConfig(model=model, framework=framework, max_batch=16)
    runtime_stats = ServingSimulator(legacy_cfg).run(copy.deepcopy(workload))
    legacy_stats = ServingSimulator(legacy_cfg).run_legacy(
        copy.deepcopy(workload)
    )
    drift = abs(
        runtime_stats.makespan_s - legacy_stats.makespan_s
    ) / legacy_stats.makespan_s

    old, new = results["blocking+reserve"], results["chunked+preempt"]
    metrics = {
        "p99_latency_gain": (
            old.latency_percentile(99) / new.latency_percentile(99)
        ),
        "p99_ttft_gain": old.ttft_percentile(99) / new.ttft_percentile(99),
        "mean_latency_gain": old.mean_latency_s / new.mean_latency_s,
        "preemptions": float(new.preemptions),
        "legacy_makespan_drift": drift,
    }
    return Experiment(
        exp_id="ext_serving_runtime",
        title=(
            f"Scheduler comparison, {model}/{framework} at a "
            f"{kv_cap_tokens}-token KV cap"
        ),
        headers=["scheduler", "tokens_per_s", "mean_lat_s", "p99_lat_s",
                 "p99_ttft_s", "preemptions", "completed"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): with KV memory "
            "the binding constraint, worst-case reservation delays "
            "admission and blocking prefill stalls running decodes; "
            "chunked prefill + preemption-by-recompute admits on actual "
            "block demand and recovers the tail. The drift metric "
            "translation-validates the event runtime against the legacy "
            "closed loop (must stay under 1%)."
        ),
    )
