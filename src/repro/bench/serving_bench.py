"""Serving-orthogonality experiment (paper Section 2.3's claim).

The paper says SpInfer "is orthogonal to these serving systems and can
complement and improve their performance".  This experiment serves one
Poisson request trace under Orca-style continuous batching on a single
RTX4090 and compares frameworks on throughput, latency and KV headroom.
"""

from __future__ import annotations

from typing import List

from ..llm.serving import compare_frameworks, poisson_workload
from .harness import Experiment

__all__ = ["ext_serving"]


def ext_serving(
    num_requests: int = 32,
    arrival_rate: float = 1.5,
    model: str = "opt-13b",
) -> Experiment:
    """Continuous-batching comparison on one RTX4090."""
    workload = poisson_workload(
        num_requests=num_requests,
        arrival_rate=arrival_rate,
        prompt_len=64,
        output_len=128,
        seed=0,
    )
    results = compare_frameworks(workload, model=model, num_gpus=1, max_batch=32)
    rows: List[List[object]] = []
    for fw, stats in sorted(results.items()):
        rows.append(
            [
                fw,
                stats.throughput_tokens_per_s,
                stats.mean_latency_s,
                stats.latency_percentile(95),
                stats.peak_batch,
                stats.kv_budget_bytes / 1e9,
            ]
        )
    metrics = {}
    if "spinfer" in results and "flash-llm" in results:
        sp, fl = results["spinfer"], results["flash-llm"]
        metrics["throughput_gain_vs_flash_llm"] = (
            sp.throughput_tokens_per_s / fl.throughput_tokens_per_s
        )
        metrics["latency_gain_vs_flash_llm"] = (
            fl.mean_latency_s / sp.mean_latency_s
        )
        metrics["kv_headroom_vs_flash_llm"] = (
            sp.kv_budget_bytes / fl.kv_budget_bytes
        )
    metrics["dense_frameworks_fit"] = float(
        "fastertransformer" in results or "deepspeed" in results
    )
    return Experiment(
        exp_id="ext_serving",
        title=f"Continuous batching, {model} on 1x RTX4090",
        headers=["framework", "tokens_per_s", "mean_lat_s", "p95_lat_s",
                 "peak_batch", "kv_budget_gb"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): SpInfer's weight "
            "compression both speeds decode steps and frees KV headroom, "
            "so it helps a continuous-batching server on both axes; dense "
            "frameworks cannot even host OPT-13B on one 24 GB GPU."
        ),
    )
