"""Capacity-planning experiment: autoscaling vs static provisioning.

Extension experiment (no paper counterpart, but the endpoint of its
cost story): SpInfer's pitch is serving LLMs on cheaper GPUs — a fleet
operator's version of that question is *how many* of those GPUs a real
traffic curve needs, and whether elasticity buys anything once faults
and scale-down KV migration are priced in.  This experiment sweeps the
builtin policy set (static-2/3/4 baselines and both dynamic
autoscalers) over the pinned diurnal workload, fault-free and under the
``chaos-mix`` fault plan, and tabulates the cost-vs-goodput plane the
``repro fleet`` planner reports.

The headline metric is the dominance claim the CI fleet job gates on:
under chaos-mix, the target-utilization autoscaler must beat at least
one static baseline outright — strictly lower cost at equal-or-better
TTFT-SLO attainment and availability.
"""

from __future__ import annotations

from typing import List

from ..fleet import FleetConfig, fleet_report
from .harness import Experiment

__all__ = ["ext_fleet"]


def ext_fleet(quick: bool = False) -> Experiment:
    """Policy × fault-arm sweep on the pinned diurnal traffic curve."""
    arms = [
        ("none", FleetConfig(quick=quick)),
        ("chaos-mix", FleetConfig(quick=quick, fault_plan="chaos-mix")),
    ]
    rows: List[List[object]] = []
    metrics = {}
    for arm_name, cfg in arms:
        report = fleet_report(cfg)
        for policy in sorted(report["policies"]):
            p = report["policies"][policy]
            rows.append([
                arm_name,
                policy,
                p["cost"]["usd"],
                p["service"]["goodput_tokens_per_s"],
                p["service"]["slo_attainment"],
                p["service"]["availability"],
                p["scaling"]["peak_replicas"],
                p["scaling"]["scale_ups"],
                p["scaling"]["scale_downs"],
                p["kv_migration"]["migrations"],
            ])
        suffix = "chaos" if arm_name == "chaos-mix" else "clean"
        dominated = report["dominates"].get("target-util", [])
        metrics[f"target_util_dominated_statics_{suffix}"] = float(
            len(dominated)
        )
        metrics[f"target_util_cost_usd_{suffix}"] = (
            report["policies"]["target-util"]["cost"]["usd"]
        )
        metrics[f"static_4_cost_usd_{suffix}"] = (
            report["policies"]["static-4"]["cost"]["usd"]
        )
        metrics[f"target_util_slo_{suffix}"] = (
            report["policies"]["target-util"]["service"]["slo_attainment"]
        )
        if arm_name == "chaos-mix":
            metrics["fleet_scale_peak_replicas_target_util"] = (
                report["fleet_scale"]["target-util"]["peak_replicas"]
            )
    return Experiment(
        exp_id="ext_fleet",
        title="Fleet autoscaling vs static provisioning (pinned diurnal "
              "traffic, fault-free and chaos-mix arms)",
        headers=["faults", "policy", "cost_usd", "goodput_tok_s", "slo",
                 "avail", "peak", "ups", "downs", "kv_migr"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): every row replays "
            "the identical pinned session workload, so columns differ only "
            "by provisioning policy and fault arm.  Static baselines pay "
            "for the peak around the clock or miss the TTFT SLO at the "
            "crest; the target-utilization autoscaler tracks the diurnal "
            "swing (and heals crashed replicas under chaos-mix), which is "
            "why target_util_dominated_statics_* >= 1: strictly cheaper "
            "than a static baseline at equal-or-better SLO attainment and "
            "availability.  Costs are simulated dollars over a compressed "
            "16 s 'day'; fleet_scale extrapolates to the modeled "
            "2M-user population."
        ),
    )
