"""Generic parameter-sweep utilities.

The figure benches fix the paper's exact parameters; these helpers let a
user sweep *their* shapes — any kernels x N x sparsity grid on any
modelled GPU — and export the result for external plotting.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional, Sequence

from ..gpu.specs import GPUSpec, RTX4090
from ..kernels import SpMMProblem, make_kernel
from .harness import Experiment, geomean

__all__ = ["kernel_sweep", "export_csv"]


def kernel_sweep(
    m: int,
    k: int,
    kernels: Sequence[str] = ("spinfer", "flash_llm", "cublas_tc"),
    ns: Sequence[int] = (8, 16, 32),
    sparsities: Sequence[float] = (0.4, 0.5, 0.6, 0.7),
    gpu: GPUSpec = RTX4090,
    exp_id: str = "sweep",
) -> Experiment:
    """Profile each kernel over the (N, sparsity) grid for one shape."""
    if not kernels:
        raise ValueError("need at least one kernel")
    if not ns or not sparsities:
        raise ValueError("need at least one N and one sparsity")
    instances = {name: make_kernel(name) for name in kernels}

    rows: List[List[object]] = []
    per_kernel: dict = {name: [] for name in kernels}
    for s in sparsities:
        for n in ns:
            problem = SpMMProblem(m=m, k=k, n=n, sparsity=s)
            for name in kernels:  # caller's order, not dict hash order
                p = instances[name].profile(problem, gpu)
                rows.append(
                    [name, s, n, p.time_us, p.dram_bytes / 1e6,
                     p.bandwidth_utilization, p.tc_utilization]
                )
                per_kernel[name].append(p.time_s)
    metrics = {
        f"geomean_time_us_{name}": geomean([t * 1e6 for t in times])
        for name, times in per_kernel.items()
    }
    return Experiment(
        exp_id=exp_id,
        title=f"Kernel sweep: M={m} K={k} on {gpu.name}",
        headers=["kernel", "sparsity", "N", "time_us", "dram_MB", "bw_util", "tc_util"],
        rows=rows,
        metrics=metrics,
    )


def export_csv(experiment: Experiment, path: Optional[str] = None) -> str:
    """Write an experiment's rows as CSV; returns the path written."""
    if path is None:
        from .harness import results_dir

        path = os.path.join(results_dir(), f"{experiment.exp_id}.csv")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(experiment.headers)
        writer.writerows(experiment.rows)
    return path
