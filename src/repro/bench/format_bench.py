"""Storage/roofline experiments: Fig. 3 (compression) and Fig. 4 (roofline)."""

from __future__ import annotations

from typing import List, Sequence

from ..formats.analytic import compression_ratio
from ..gpu.roofline import ci_gemm, ci_optimal, ci_spmm, roofline_point
from ..gpu.specs import RTX4090, GPUSpec
from .harness import Experiment

__all__ = ["fig03_compression", "fig04_roofline"]

#: Formats plotted in Fig. 3, in the paper's order.
FIG03_FORMATS = ("csr", "tiled-csl", "sparta", "tca-bme", "optimal")


def fig03_compression(
    m: int = 4096,
    k: int = 4096,
    sparsities: Sequence[float] = tuple(i / 20 for i in range(2, 19)),
) -> Experiment:
    """Fig. 3: compression ratio vs sparsity (M = K = 4096)."""
    rows: List[List[object]] = []
    cr_at = {}
    for fmt in FIG03_FORMATS:
        for s in sparsities:
            cr = compression_ratio(fmt, m, k, s)
            rows.append([fmt, s, cr])
            cr_at[(fmt, round(s, 2))] = cr
    metrics = {
        "tca_bme_cr_at_30": cr_at[("tca-bme", 0.30)],
        "tca_bme_cr_at_50": cr_at[("tca-bme", 0.50)],
        "tca_bme_cr_at_70": cr_at[("tca-bme", 0.70)],
        "csr_cr_at_50": cr_at[("csr", 0.50)],
        "tiled_csl_cr_at_50": cr_at[("tiled-csl", 0.50)],
        "sparta_cr_at_50": cr_at[("sparta", 0.50)],
    }
    return Experiment(
        exp_id="fig03",
        title=f"Compression ratio vs sparsity (M=K={m})",
        headers=["format", "sparsity", "compression_ratio"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Paper: CSR and Tiled-CSL fall below CR=1 under 50% sparsity; "
            "SparTA sits slightly above 1 at 50%; TCA-BME stays above 1 "
            "even at 30% and tracks the optimal bound."
        ),
    )


def fig04_roofline(
    gpu: GPUSpec = RTX4090,
    m: int = 28672,
    sparsities: Sequence[float] = (0.4, 0.5, 0.6, 0.7),
    ns: Sequence[int] = (8, 16, 32),
) -> Experiment:
    """Fig. 4: roofline placement of GEMM/SpMM at varying sparsity and N."""
    rows: List[List[object]] = []
    all_memory_bound = True
    for n in ns:
        gemm = roofline_point("gemm", ci_gemm(m, n), gpu)
        rows.append(
            ["gemm", 0.0, n, gemm.ci, gemm.attainable_tflops, gemm.memory_bound]
        )
        all_memory_bound &= gemm.memory_bound
        for s in sparsities:
            for fmt in ("csr", "tiled-csl", "sparta", "tca-bme"):
                cr = compression_ratio(fmt, m, m, s)
                pt = roofline_point(fmt, ci_spmm(m, n, cr), gpu)
                rows.append([fmt, s, n, pt.ci, pt.attainable_tflops, pt.memory_bound])
                all_memory_bound &= pt.memory_bound
            opt = roofline_point("optimal", ci_optimal(m, n, s), gpu)
            rows.append(
                ["optimal", s, n, opt.ci, opt.attainable_tflops, opt.memory_bound]
            )
    # TCA-BME's CI gain over CSR at the 50%/N=16 anchor point.
    ci_tca = ci_spmm(m, 16, compression_ratio("tca-bme", m, m, 0.5))
    ci_csr = ci_spmm(m, 16, compression_ratio("csr", m, m, 0.5))
    return Experiment(
        exp_id="fig04",
        title=f"Roofline analysis on {gpu.name} (M={m})",
        headers=["kernel", "sparsity", "N", "ci_flops_per_elem",
                 "attainable_tflops", "memory_bound"],
        rows=rows,
        metrics={
            "all_decode_points_memory_bound": float(all_memory_bound),
            "tca_ci_gain_over_csr_at_50": ci_tca / ci_csr,
        },
        notes=(
            "Paper: every decode-phase point sits in the memory-bound "
            "region, so attainable performance scales with CI, i.e. with "
            "the format's compression ratio."
        ),
    )
