"""Fault-tolerance experiment: recovery policies under injected faults.

Extension experiment (no paper counterpart, but directly downstream of
the paper's serving claim): if SpInfer's KV headroom makes a
continuous-batching server viable on consumer GPUs, then the next
question a deployment asks is what that server does when a consumer GPU
*fails*.  This experiment replays the same Poisson trace under each
builtin fault plan once per recovery policy and tabulates the SLO
metrics the chaos harness computes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..llm.chaos import ChaosConfig, compare_recovery_policies
from .harness import Experiment

__all__ = ["ext_chaos"]


def ext_chaos(
    plans: Optional[Sequence[str]] = None,
    quick: bool = False,
) -> Experiment:
    """Recovery-policy shoot-out across the builtin fault plans."""
    plan_names = list(plans) if plans else [
        "gpu-crash", "stragglers", "chaos-mix", "flaky-link",
    ]
    rows: List[List[object]] = []
    metrics = {}
    for plan in plan_names:
        cfg = ChaosConfig(plan=plan)
        if quick:
            cfg = cfg.quick()
        results = compare_recovery_policies(cfg)
        for name, stats in sorted(results.items()):
            rows.append([
                plan,
                name,
                len(stats.completed),
                len(stats.failed) + len(stats.shed)
                + len(stats.timed_out) + len(stats.cancelled),
                stats.retries,
                stats.wasted_recompute_tokens,
                stats.goodput_tokens_per_s,
                stats.availability,
            ])
        if plan == "gpu-crash":
            ff = results["fail-fast"]
            rr = results["reroute"]
            metrics["reroute_goodput_gain_vs_fail_fast"] = (
                rr.goodput_tokens_per_s / ff.goodput_tokens_per_s
            )
            metrics["reroute_availability"] = rr.availability
            metrics["fail_fast_availability"] = ff.availability
        if plan == "flaky-link":
            metrics["flaky_link_retry_completed"] = float(
                len(results["retry"].completed)
            )
            metrics["flaky_link_fail_fast_completed"] = float(
                len(results["fail-fast"].completed)
            )
    return Experiment(
        exp_id="ext_chaos",
        title="Recovery policies under injected faults (identical seeds)",
        headers=["plan", "policy", "done", "lost", "retries",
                 "wasted_tok", "goodput_tok_s", "avail"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): every cell replays "
            "the same workload under the same pinned fault plan, so the "
            "columns differ only by recovery policy.  Rerouting with "
            "recompute-from-prompt keeps availability at 1.0 through a GPU "
            "crash that costs fail-fast every resident request; migration "
            "retry turns a 100%-loss flaky link into a completed batch."
        ),
    )
