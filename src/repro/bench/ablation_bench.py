"""Design-choice ablations beyond the paper's Table 1.

DESIGN.md calls out four tunables the paper fixes by construction or
microbenchmark; each gets an ablation sweep here:

* **GroupTile size** (fixed at 64 in the paper): trades offset-array
  overhead and LDGSTS transaction efficiency (small tiles) against
  shared-memory footprint and occupancy (large tiles).
* **Split-K factor** (chosen by heuristic): trades grid parallelism
  against FP32-workspace reduction traffic.
* **mma shape** (the paper's microbenchmark picks ``m16n8k16`` over
  ``m16n8k8``): half-size mma doubles instruction count at equal FLOPs,
  halving the skinny-N issue-bound ceiling.
* **Value quantization** (Section 2.3's composability claim): INT8/INT4
  value streams on top of unchanged bitmap indexing.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.quant import QuantizedTCABME
from ..core.tca_bme import tca_bme_storage_bytes
from ..core.tiles import TileConfig
from ..gpu.calibration import get_calibration
from ..gpu.occupancy import occupancy
from ..gpu.simulator import LaunchShape, Traffic, Work, simulate_kernel
from ..gpu.specs import RTX4090, GPUSpec
from ..kernels import SpMMProblem, make_kernel
from .harness import Experiment

__all__ = [
    "abl_grouptile_size",
    "abl_split_k",
    "abl_mma_shape",
    "abl_quantization",
]

_PROBLEM = SpMMProblem(m=28672, k=8192, n=16, sparsity=0.6)


def abl_grouptile_size(gpu: GPUSpec = RTX4090) -> Experiment:
    """Sweep the GroupTile edge; the paper's 64 should sit at the knee."""
    p = _PROBLEM
    cal = get_calibration("spinfer")
    rows: List[List[object]] = []
    times = {}
    for gt in (16, 32, 64, 128, 256):
        cfg = TileConfig(gt_h=gt, gt_w=gt)
        weight_bytes = float(tca_bme_storage_bytes(p.m, p.k, p.nnz, cfg))

        # Small GroupTiles fragment the value stream: each GTile's slice
        # starts a fresh (aligned, possibly partial) LDGSTS burst, so
        # effective load efficiency falls with bytes-per-GTile.
        bytes_per_gt = weight_bytes / cfg.num_group_tiles(p.m, p.k)
        burst_overhead = 256.0  # one 128B sector pair of startup waste
        mem_eff = cal.mem_efficiency * bytes_per_gt / (bytes_per_gt + burst_overhead)

        # Large GroupTiles blow up the double-buffered shared footprint:
        # 2 x (bitmaps + worst-case half-dense values + XTile panel).
        shared = int(
            2 * (gt * gt // 8 + gt * gt * 2 * 0.5 + gt * 32 * 2)
        )
        shared = min(shared, gpu.max_shared_per_block_kb * 1024)
        occ = occupancy(gpu, cal.threads_per_block, cal.registers_per_thread, shared)
        if occ.blocks_per_sm == 0:
            rows.append([gt, weight_bytes / 1e6, 0.0, "does not fit"])
            continue

        # DRAM latency hiding needs enough resident warps; ~16 per SM
        # saturates the memory system on Ada/Ampere.
        mem_eff *= min(1.0, occ.warps_per_sm / 16.0)

        grid = math.ceil(p.m / gt) * max(1, p.k // (gt * 4))
        traffic = Traffic(
            weight_bytes=weight_bytes,
            activation_bytes=2.0 * p.k * p.n,
            output_bytes=2.0 * p.m * p.n,
        )
        from dataclasses import replace

        cal_gt = replace(
            cal,
            mem_efficiency=mem_eff,
            shared_bytes_per_block=shared,
            tc_efficiency=cal.tc_efficiency_at(p.n, gpu),
            tc_n_half=0.0,
        )
        prof = simulate_kernel(
            gpu, cal_gt, LaunchShape(grid_blocks=grid), traffic,
            Work(tc_flops=p.dense_flops, decode_values=float(p.nnz)),
        )
        times[gt] = prof.time_s
        rows.append([gt, weight_bytes / 1e6, prof.time_us, occ.occupancy])

    best = min(times, key=times.get)
    return Experiment(
        exp_id="abl_grouptile",
        title="GroupTile size ablation (M/K/N=28672/8192/16, 60%)",
        headers=["gt_edge", "weight_MB", "time_us", "occupancy"],
        rows=rows,
        metrics={
            "best_gt": float(best),
            "penalty_gt16": times[16] / times[best],
            "penalty_gt256": times.get(256, float("inf")) / times[best]
            if 256 in times
            else float("inf"),
        },
        notes="The paper fixes GT=64; the sweep should show a knee there "
        "(small tiles waste bursts and offsets, large tiles kill occupancy).",
    )


def abl_split_k(gpu: GPUSpec = RTX4090) -> Experiment:
    """Sweep the split-K factor on a small-M matrix (grid starved at 1)."""
    p = SpMMProblem(m=4096, k=4096, n=16, sparsity=0.6)
    cal = get_calibration("spinfer")
    from dataclasses import replace

    cal_eff = replace(cal, tc_efficiency=cal.tc_efficiency_at(p.n, gpu), tc_n_half=0.0)
    weight_bytes = float(tca_bme_storage_bytes(p.m, p.k, p.nnz))
    rows: List[List[object]] = []
    times = {}
    for split in (1, 2, 4, 8, 16, 32):
        grid = math.ceil(p.m / 64) * split
        workspace = 2.0 * 4.0 * p.m * p.n * split if split > 1 else 0.0
        traffic = Traffic(
            weight_bytes=weight_bytes,
            activation_bytes=2.0 * p.k * p.n,
            output_bytes=2.0 * p.m * p.n,
            workspace_bytes=workspace,
        )
        prof = simulate_kernel(
            gpu, cal_eff, LaunchShape(grid_blocks=grid), traffic,
            Work(tc_flops=p.dense_flops, decode_values=float(p.nnz)),
        )
        times[split] = prof.time_s
        rows.append([split, grid, prof.wave_utilization, workspace / 1e6,
                     prof.time_us])
    best = min(times, key=times.get)
    return Experiment(
        exp_id="abl_splitk",
        title="Split-K ablation (M/K/N=4096/4096/16, 60%)",
        headers=["split_k", "grid_blocks", "wave_util", "workspace_MB", "time_us"],
        rows=rows,
        metrics={
            "best_split_k": float(best),
            "speedup_over_split1": times[1] / times[best],
        },
        notes="Small-M matrices starve the grid at split_k=1; splitting "
        "K restores occupancy until workspace traffic dominates.",
    )


def abl_mma_shape(gpu: GPUSpec = RTX4090) -> Experiment:
    """m16n8k16 vs m16n8k8 (the paper's Section 4.2.1 microbenchmark).

    Equal FLOPs need twice the instructions with the half-K mma, so the
    per-tile bookkeeping that caps the skinny-N TC pipe doubles.
    """
    p = _PROBLEM
    cal = get_calibration("spinfer")
    from dataclasses import replace

    rows: List[List[object]] = []
    times = {}
    for shape, n_half_scale in (("m16n8k16", 1.0), ("m16n8k8", 2.0)):
        eff = replace(cal, tc_n_half=cal.tc_n_half * n_half_scale)
        prof = make_kernel("spinfer").profile(p, gpu)
        # Rebuild with the scaled saturation: reuse the kernel's traffic
        # but swap the compute ceiling.
        cal_eff = replace(
            eff, tc_efficiency=eff.tc_efficiency_at(p.n, gpu), tc_n_half=0.0
        )
        traffic = Traffic(
            weight_bytes=float(tca_bme_storage_bytes(p.m, p.k, p.nnz)),
            activation_bytes=2.0 * p.k * p.n,
            output_bytes=2.0 * p.m * p.n,
        )
        grid = math.ceil(p.m / 64)
        prof = simulate_kernel(
            gpu, cal_eff, LaunchShape(grid_blocks=grid), traffic,
            Work(tc_flops=p.dense_flops, decode_values=float(p.nnz)),
        )
        times[shape] = prof.time_s
        rows.append([shape, prof.time_us, prof.tc_utilization])
    return Experiment(
        exp_id="abl_mma_shape",
        title="mma instruction shape ablation",
        headers=["mma_shape", "time_us", "tc_util"],
        rows=rows,
        metrics={"k16_speedup_over_k8": times["m16n8k8"] / times["m16n8k16"]},
        notes="Paper: 'mma instructions with larger shapes offer higher "
        "throughput, leading us to opt for mma.m16n8k16'.",
    )


def abl_quantization() -> Experiment:
    """FP16 vs INT8 vs INT4 value streams over the bitmap index."""
    rng = np.random.default_rng(0)
    m = k = 1024
    w = rng.standard_normal((m, k)).astype(np.float16)
    w[rng.random((m, k)) < 0.6] = 0
    x = rng.standard_normal((k, 16)).astype(np.float16)
    ref = w.astype(np.float32) @ x.astype(np.float32)
    ref_norm = float(np.linalg.norm(ref))

    rows: List[List[object]] = []
    crs = {}
    for bits in (16, 8, 4):
        if bits == 16:
            from ..core.tca_bme import encode

            enc = encode(w)
            cr = enc.compression_ratio()
            err = 0.0
        else:
            q = QuantizedTCABME.from_dense(w, bits=bits)
            cr = q.compression_ratio()
            err = float(np.linalg.norm(q.spmm(x) - ref)) / ref_norm
        crs[bits] = cr
        rows.append([f"fp16" if bits == 16 else f"int{bits}", cr, err])
    return Experiment(
        exp_id="abl_quant",
        title="TCA-BME value quantization (1024x1024, 60% sparsity)",
        headers=["values", "compression_ratio", "rel_spmm_error"],
        rows=rows,
        metrics={
            "cr_fp16": crs[16],
            "cr_int8": crs[8],
            "cr_int4": crs[4],
            "int8_cr_gain": crs[8] / crs[16],
        },
        notes="Bitmap indexing is value-width-agnostic, so quantization "
        "composes: INT8 lifts CR ~1.6x over FP16 at sub-1% SpMM error.",
    )
