"""Fig. 9 study: the asynchronous pipeline schedule, derived not assumed.

Paper Fig. 9 is a schematic of the depth-2 pipeline; Table 1 measures
what its pieces are worth.  Here we *derive* the schedule: per-iteration
stage durations for one thread block are computed from the TCA-BME tile
sizes and the GPU's per-block resource shares, then the event-driven
model (:mod:`repro.gpu.pipeline`) schedules the main loop under each
combination of the two pipeline knobs (double buffering, separate
cp.async groups).
"""

from __future__ import annotations

import math
from typing import List

from ..gpu.calibration import get_calibration
from ..gpu.occupancy import occupancy
from ..gpu.pipeline import PipelineConfig, simulate_pipeline
from ..gpu.specs import RTX4090, GPUSpec
from ..kernels import SpMMProblem
from .harness import Experiment

__all__ = ["block_pipeline_config", "fig09_pipeline_schedule"]

#: Decode CUDA-core ops per surviving value (matches the SpInfer
#: calibration's decode_ops_per_value).
_DECODE_OPS = 6.0


def block_pipeline_config(
    problem: SpMMProblem,
    gpu: GPUSpec = RTX4090,
    gt: int = 64,
    double_buffering: bool = True,
    separate_groups: bool = True,
) -> PipelineConfig:
    """Per-thread-block stage durations for the SpInfer main loop.

    One block owns a ``gt x N`` output stripe and iterates over
    ``K / gt`` GroupTiles.  Durations divide chip-level throughputs by
    the number of concurrently resident blocks.
    """
    cal = get_calibration("spinfer")
    occ = occupancy(
        gpu, cal.threads_per_block, cal.registers_per_thread,
        cal.shared_bytes_per_block,
    )
    resident_blocks = max(1, occ.blocks_per_sm * gpu.sm_count)

    iterations = max(1, math.ceil(problem.k / gt))
    density = 1.0 - problem.sparsity

    # Bytes one iteration moves: bitmaps (8 B per 8x8 tile) + values for
    # the W GroupTile, plus the XTile panel.
    bitmap_bytes = (gt // 8) * (gt // 8) * 8.0
    value_bytes = gt * gt * density * 2.0
    w_bytes = bitmap_bytes + value_bytes
    x_bytes = gt * min(problem.n, 32) * 2.0

    mem_share = gpu.dram_bandwidth_bytes * cal.mem_efficiency / resident_blocks
    t_load_w = w_bytes / mem_share
    t_load_x = x_bytes / mem_share

    decode_ops = gt * gt * density * _DECODE_OPS
    t_decode = decode_ops / (gpu.int_ops / resident_blocks)

    flops = 2.0 * gt * gt * problem.n
    tc_share = (
        gpu.tc_fp16_flops * cal.tc_efficiency_at(problem.n, gpu) / resident_blocks
    )
    t_compute = flops / tc_share

    return PipelineConfig(
        iterations=iterations,
        t_load_w=t_load_w,
        t_load_x=t_load_x,
        t_decode=t_decode,
        t_compute=t_compute,
        double_buffering=double_buffering,
        separate_groups=separate_groups,
    )


def fig09_pipeline_schedule(gpu: GPUSpec = RTX4090) -> Experiment:
    """Schedule the main loop under each pipeline-knob combination."""
    problem = SpMMProblem(m=28672, k=8192, n=16, sparsity=0.6)
    variants = [
        ("full pipeline", True, True),
        ("no double buffering", False, True),
        ("fused cp.async group", True, False),
        ("neither", False, False),
    ]
    rows: List[List[object]] = []
    totals = {}
    gantts = []
    for label, dbuf, sep in variants:
        cfg = block_pipeline_config(
            problem, gpu, double_buffering=dbuf, separate_groups=sep
        )
        trace = simulate_pipeline(cfg)
        totals[label] = trace.total_time
        gantts.append(f"{label}:\n{trace.render_gantt(width=64, max_iterations=6)}")
        rows.append(
            [
                label,
                trace.total_time * 1e6,
                trace.utilization("mem"),
                trace.utilization("cuda"),
                trace.utilization("tc"),
                trace.stalls("tc") * 1e6,
            ]
        )
    full = totals["full pipeline"]
    return Experiment(
        exp_id="fig09",
        title=f"Derived pipeline schedules, one thread block on {gpu.name}",
        headers=["variant", "block_time_us", "mem_util", "cuda_util",
                 "tc_util", "tc_stall_us"],
        rows=rows,
        metrics={
            "slowdown_no_double_buffering": totals["no double buffering"] / full,
            "slowdown_fused_group": totals["fused cp.async group"] / full,
            "slowdown_neither": totals["neither"] / full,
        },
        notes=(
            "Derived from first principles (no overlap calibration): both "
            "knobs must help, and their removal must cost a few percent "
            "to tens of percent, consistent with Table 1's +1.98% for the "
            "async pipeline.\n\nSchedules (first 6 iterations; digits = "
            "iteration occupying the resource, '.' = idle):\n\n"
            + "\n\n".join(gantts)
        ),
    )
