"""Kernel-level experiments: Figs. 1, 10, 11, 12, 16 and Table 1.

Each function regenerates the data behind one figure/table of the
paper's kernel evaluation, using the simulated GPUs (RTX4090 / A6000)
and the exact storage equations of every format.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gpu.specs import RTX4090, GPUSpec
from ..kernels import SpMMProblem, make_kernel
from ..llm.models import kernel_matrix_zoo
from .harness import Experiment, geomean

__all__ = [
    "fig01_motivation",
    "fig10_kernel_sweep",
    "fig11_smat_comparison",
    "fig12_micro_metrics",
    "tab01_ablation",
    "fig16_prefill",
]

#: Kernels compared in Fig. 1 / Fig. 10, in the paper's plotting order.
FIG10_KERNELS = ("cusparse", "sputnik", "sparta", "flash_llm", "spinfer")

#: Decode-phase batch sizes of Fig. 10.
FIG10_NS = (8, 16, 32)

#: Sparsity grid of the kernel evaluation.
FIG10_SPARSITIES = (0.4, 0.5, 0.6, 0.7)


def fig01_motivation(gpu: GPUSpec = RTX4090) -> Experiment:
    """Fig. 1: SpMM execution time vs cuBLAS at M/K/N = 28672/8192/16."""
    m, k, n = 28672, 8192, 16
    cublas = make_kernel("cublas_tc")
    rows: List[List[object]] = []
    sparsities = (0.4, 0.5, 0.6, 0.7, 0.8)
    crossover: Dict[str, Optional[float]] = {}
    for name in FIG10_KERNELS:
        kernel = make_kernel(name)
        crossover[name] = None
        for s in sparsities:
            prob = SpMMProblem(m=m, k=k, n=n, sparsity=s)
            t = kernel.profile(prob, gpu).time_us
            t_dense = cublas.profile(prob, gpu).time_us
            rows.append([name, s, t, t_dense, t_dense / t])
            if crossover[name] is None and t < t_dense:
                crossover[name] = s
    metrics = {
        f"crossover_sparsity_{name}": (xo if xo is not None else 1.0)
        for name, xo in crossover.items()
    }
    return Experiment(
        exp_id="fig01",
        title=f"SpMM vs cuBLAS, M/K/N={m}/{k}/{n} on {gpu.name}",
        headers=["kernel", "sparsity", "time_us", "cublas_us", "speedup"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Paper: only SpInfer beats cuBLAS at <=50% sparsity; Flash-LLM "
            "breaks even around 50-60%, CUDA-core kernels never do in range."
        ),
    )


def fig10_kernel_sweep(
    gpu: GPUSpec = RTX4090,
    sparsities: Sequence[float] = FIG10_SPARSITIES,
    ns: Sequence[int] = FIG10_NS,
    max_shapes: Optional[int] = None,
) -> Experiment:
    """Fig. 10: speedup over cuBLAS across the LLM weight-matrix zoo."""
    zoo = kernel_matrix_zoo()
    if max_shapes is not None:
        zoo = zoo[:max_shapes]
    kernels = {name: make_kernel(name) for name in FIG10_KERNELS}
    cublas = make_kernel("cublas_tc")

    per_kernel: Dict[str, List[float]] = {name: [] for name in FIG10_KERNELS}
    per_kernel_by_s: Dict[str, Dict[float, List[float]]] = {
        name: {s: [] for s in sparsities} for name in FIG10_KERNELS
    }
    spinfer_wins = {s: 0 for s in sparsities}
    cases = {s: 0 for s in sparsities}

    for s in sparsities:
        for _label, m, k in zoo:
            for n in ns:
                prob = SpMMProblem(m=m, k=k, n=n, sparsity=s)
                t_dense = cublas.profile(prob, gpu).time_s
                for name, kernel in kernels.items():
                    speedup = t_dense / kernel.profile(prob, gpu).time_s
                    per_kernel[name].append(speedup)
                    per_kernel_by_s[name][s].append(speedup)
                cases[s] += 1
                if per_kernel_by_s["spinfer"][s][-1] > 1.0:
                    spinfer_wins[s] += 1

    rows = []
    for name in FIG10_KERNELS:
        for s in sparsities:
            rows.append([name, s, geomean(per_kernel_by_s[name][s])])
    metrics = {
        f"avg_speedup_{name}": geomean(vals) for name, vals in per_kernel.items()
    }
    for name in FIG10_KERNELS:
        if name != "spinfer":
            metrics[f"spinfer_over_{name}"] = (
                metrics["avg_speedup_spinfer"] / metrics[f"avg_speedup_{name}"]
            )
    for s in sparsities:
        metrics[f"spinfer_win_rate_{int(s * 100)}"] = (
            spinfer_wins[s] / cases[s] if cases[s] else 0.0
        )
    return Experiment(
        exp_id=f"fig10_{gpu.name.lower()}",
        title=f"Kernel speedups vs cuBLAS over the model zoo on {gpu.name}",
        headers=["kernel", "sparsity", "geomean_speedup"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Paper (RTX4090): SpInfer avg 1.79x over cuBLAS; 2.55x over "
            "Sputnik, 1.67x over SparTA, 1.56x over Flash-LLM, 18.14x over "
            "cuSPARSE. A6000 avg 1.51x."
        ),
    )


def fig11_smat_comparison(gpu: GPUSpec = RTX4090) -> Experiment:
    """Fig. 11: SpInfer vs SMaT from LLM to scientific sparsity.

    Beyond ~99.7 % sparsity the paper's scientific matrices have
    *clustered* non-zeros, so whole 16x16 blocks vanish and SMaT's block
    skipping wins; we model that with block occupancy equal to density
    clustering (occupancy ~= 40x density, i.e. blocks are dense inside).
    """
    m = k = 16384
    n = 16
    spinfer = make_kernel("spinfer")
    smat = make_kernel("smat")
    rows: List[List[object]] = []
    crossover = None
    for s in (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.995, 0.997, 0.999, 0.9995):
        # Mildly clustered scientific pattern: non-zeros cluster ~2x
        # relative to uniform, so a 16x16 block (256 cells) empties like
        # ~116 independent cells would.  At LLM sparsity every block is
        # occupied; blocks only start vanishing beyond ~99%.
        occupancy = 1.0 - s**116
        prob = SpMMProblem(m=m, k=k, n=n, sparsity=s, block_occupancy=occupancy)
        t_spinfer = spinfer.profile(prob, gpu).time_us
        t_smat = smat.profile(prob, gpu).time_us
        ratio = t_smat / t_spinfer
        rows.append([s, occupancy, t_spinfer, t_smat, ratio])
        if crossover is None and ratio < 1.0:
            crossover = s
    prob50 = SpMMProblem(m=m, k=k, n=n, sparsity=0.5, block_occupancy=1.0)
    speedup50 = (
        smat.profile(prob50, gpu).time_s / spinfer.profile(prob50, gpu).time_s
    )
    return Experiment(
        exp_id="fig11",
        title="SpInfer vs SMaT across sparsity (clustered patterns)",
        headers=["sparsity", "block_occupancy", "spinfer_us", "smat_us",
                 "smat/spinfer"],
        rows=rows,
        metrics={
            "spinfer_speedup_at_50": speedup50,
            "crossover_sparsity": crossover if crossover is not None else 1.0,
        },
        notes=(
            "Paper: SpInfer 2.12x faster at 50%; SMaT only wins above "
            "~99.7% sparsity on clustered scientific matrices."
        ),
    )


def fig12_micro_metrics(gpu: GPUSpec = RTX4090) -> Experiment:
    """Fig. 12: Nsight-style micro metrics for SpInfer/cuBLAS/Flash-LLM."""
    prob = SpMMProblem(m=28672, k=8192, n=16, sparsity=0.6)
    rows = []
    profiles = {}
    for name in ("cublas_tc", "flash_llm", "spinfer"):
        p = make_kernel(name).profile(prob, gpu)
        profiles[name] = p
        rows.append(
            [
                name,
                p.registers_per_thread,
                p.dram_bytes / 1e6,
                p.bandwidth_utilization,
                p.bank_conflict_replays / 1e3,
                p.tc_utilization,
                p.occupancy.occupancy,
            ]
        )
    sp, fl, cb = profiles["spinfer"], profiles["flash_llm"], profiles["cublas_tc"]
    return Experiment(
        exp_id="fig12",
        title="Micro-level metrics (M/K/N=28672/8192/16, 60% sparsity)",
        headers=[
            "kernel",
            "regs/thread",
            "dram_MB",
            "bw_util",
            "bank_replays_k",
            "tc_util",
            "occupancy",
        ],
        rows=rows,
        metrics={
            "spinfer_fewest_registers": float(
                sp.registers_per_thread
                < min(fl.registers_per_thread, cb.registers_per_thread)
            ),
            "spinfer_dram_vs_cublas": sp.dram_bytes / cb.dram_bytes,
            "spinfer_dram_vs_flash": sp.dram_bytes / fl.dram_bytes,
            "flash_bank_replays": fl.bank_conflict_replays,
            "spinfer_bank_replays": sp.bank_conflict_replays,
        },
        notes=(
            "Paper: SpInfer uses the fewest registers, reads the least "
            "DRAM, has zero shared-memory write conflicts (Flash-LLM's "
            "scatter conflicts), and the highest TC pipe utilisation."
        ),
    )


def tab01_ablation(gpu: GPUSpec = RTX4090) -> Experiment:
    """Table 1: ablating SMBD and the asynchronous pipeline."""
    prob = SpMMProblem(m=28672, k=8192, n=16, sparsity=0.6)
    rows = []
    times = {}
    for name, label in (
        ("spinfer", "SMBD + AsyncPipe"),
        ("spinfer_no_smbd", "- SMBD"),
        ("spinfer_no_async", "- AsyncPipe"),
    ):
        p = make_kernel(name).profile(prob, gpu)
        times[name] = p.time_s
        rows.append(
            [
                label,
                p.time_us,
                p.bandwidth_utilization,
                p.issue_slot_busy,
                p.warp_cycles_per_inst,
                p.tc_utilization,
            ]
        )
    return Experiment(
        exp_id="tab01",
        title="Kernel ablation (M/K/N=28672/8192/16, 60% sparsity)",
        headers=["config", "duration_us", "max_bw", "issue_busy",
                 "warp_cyc/inst", "tc_util"],
        rows=rows,
        metrics={
            "slowdown_no_smbd": times["spinfer_no_smbd"] / times["spinfer"],
            "slowdown_no_async": times["spinfer_no_async"] / times["spinfer"],
        },
        notes=(
            "Paper: removing SMBD costs +10.03% duration; removing the "
            "async pipeline +1.98%. Counter magnitudes are model-derived; "
            "orderings match the paper."
        ),
    )


def fig16_prefill(gpu: GPUSpec = RTX4090) -> Experiment:
    """Fig. 16: small-N vs large-N (prefill) behaviour, M=28672 K=8192."""
    spinfer = make_kernel("spinfer")
    cublas = make_kernel("cublas_tc")
    rows = []
    worst = 0.0
    for n in (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192):
        prob = SpMMProblem(m=28672, k=8192, n=n, sparsity=0.6)
        t_sp = spinfer.profile(prob, gpu).time_us
        t_cb = cublas.profile(prob, gpu).time_us
        slowdown = t_sp / t_cb
        worst = max(worst, slowdown)
        rows.append([n, t_sp, t_cb, t_cb / t_sp])
    return Experiment(
        exp_id="fig16",
        title="Decode vs prefill regime (M=28672, K=8192, 60% sparsity)",
        headers=["N", "spinfer_us", "cublas_us", "speedup"],
        rows=rows,
        metrics={"max_slowdown_large_n": worst},
        notes=(
            "Paper: SpInfer wins at decode-phase N but is up to 11.8% "
            "slower than cuBLAS once the prefill GEMM turns compute-bound."
        ),
    )
