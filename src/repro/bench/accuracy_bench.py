"""Extension experiment: pruning-quality proxies (the perplexity stand-in).

The paper's usability evidence — Wanda 60 % keeps OPT-13B at perplexity
15.9 — needs checkpoints and WikiText; this experiment establishes the
same *orderings* on dataset-free proxies over the functional model.
"""

from __future__ import annotations

from typing import List

from ..llm.accuracy import accuracy_sweep
from ..llm.functional_model import TinyConfig
from .harness import Experiment

__all__ = ["ext_accuracy"]


def ext_accuracy() -> Experiment:
    """Method x sparsity sweep of logit KL and top-1 agreement."""
    config = TinyConfig(
        num_layers=2, vocab_size=512, hidden_size=64, num_heads=4, ffn_size=256
    )
    records = accuracy_sweep(
        sparsities=(0.3, 0.5, 0.6, 0.7),
        methods=("magnitude", "wanda"),
        config=config,
        num_prompts=4,
        prompt_len=24,
    )
    rows: List[List[object]] = [
        [r["method"], r["sparsity"], r["kl"], r["top1"]] for r in records
    ]
    by_key = {(r["method"], r["sparsity"]): r for r in records}
    return Experiment(
        exp_id="ext_accuracy",
        title="Pruning quality proxies on the functional model",
        headers=["method", "sparsity", "logit_kl", "top1_agreement"],
        rows=rows,
        metrics={
            "wanda_kl_at_60": float(by_key[("wanda", 0.6)]["kl"]),
            "magnitude_kl_at_60": float(by_key[("magnitude", 0.6)]["kl"]),
            "wanda_over_magnitude_kl": float(
                by_key[("wanda", 0.6)]["kl"] / by_key[("magnitude", 0.6)]["kl"]
            ),
            "kl_growth_30_to_70": float(
                by_key[("wanda", 0.7)]["kl"] / max(by_key[("wanda", 0.3)]["kl"], 1e-12)
            ),
            "top1_drop_30_to_70": float(
                by_key[("wanda", 0.3)]["top1"] - by_key[("wanda", 0.7)]["top1"]
            ),
        },
        notes=(
            "Proxy for the paper's Wanda-60% perplexity claim. Orderings "
            "are the reproducible content (the untrained toy model's flat "
            "logits make absolute top-1 numbers meaningless): Wanda beats "
            "magnitude in divergence at every sparsity, and degradation "
            "grows monotonically with sparsity."
        ),
    )
