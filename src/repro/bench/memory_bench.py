"""Fig. 13/14 memory panel: per-framework footprint vs output length."""

from __future__ import annotations

from typing import List

from ..llm.inference import InferenceConfig, simulate_inference
from .harness import Experiment

__all__ = ["ext_memory_walls"]


def ext_memory_walls(
    model: str = "opt-13b",
    gpu: str = "RTX4090",
    num_gpus: int = 1,
    batch_size: int = 8,
) -> Experiment:
    """Memory growth with output length and each framework's OOM wall."""
    frameworks = (
        ("spinfer", 0.6),
        ("flash-llm", 0.6),
        ("fastertransformer", 0.0),
        ("deepspeed", 0.0),
    )
    output_lens = (64, 128, 256, 512, 1024, 2048)
    rows: List[List[object]] = []
    walls = {}
    for fw, sparsity in frameworks:
        longest = 0
        for out_len in output_lens:
            r = simulate_inference(InferenceConfig(
                model=model, framework=fw, gpu=gpu, num_gpus=num_gpus,
                batch_size=batch_size, prompt_len=64, output_len=out_len,
                sparsity=sparsity,
            ))
            rows.append([fw, out_len, r.memory_gb, "OOM" if r.oom else "ok"])
            if not r.oom:
                longest = out_len
        walls[fw] = longest
    return Experiment(
        exp_id="ext_memory",
        title=f"Memory walls: {model}, {num_gpus}x {gpu}, batch {batch_size}",
        headers=["framework", "output_len", "mem_gb_per_gpu", "status"],
        rows=rows,
        metrics={
            "spinfer_max_output": float(walls["spinfer"]),
            "flash_llm_max_output": float(walls["flash-llm"]),
            "dense_max_output": float(walls["fastertransformer"]),
            "wall_extension_vs_flash_llm": (
                walls["spinfer"] / walls["flash-llm"]
                if walls["flash-llm"]
                else float("inf")
            ),
        },
        notes=(
            "Fig. 13's memory dimension: weight compression converts "
            "directly into KV-cache headroom, so SpInfer's OOM wall sits "
            "at 4x (or more) the output length of Flash-LLM's; dense "
            "frameworks do not fit this GPU count at all."
        ),
    )
