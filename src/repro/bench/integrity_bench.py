"""Integrity experiment: SDC detection rate vs verification cost.

Extension experiment (no paper counterpart, but the flip side of the
paper's efficiency claim): SpInfer targets consumer GPUs, and consumer
GPUs ship without ECC — at fleet scale a silent bit flip lands in a
weight tile, a KV block, or an accumulator and the server streams
tokens computed from garbage.  This experiment replays the builtin SDC
fault plans under identical seeds across three integrity arms
(verify-off / verify-on / quarantine) and tabulates what the checksums
catch and what they cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..integrity.harness import IntegrityConfig, integrity_report
from .harness import Experiment

__all__ = ["ext_integrity"]


def ext_integrity(
    plans: Optional[Sequence[str]] = None,
    quick: bool = False,
) -> Experiment:
    """Detection-rate/goodput shoot-out across the SDC fault plans."""
    cfg = IntegrityConfig()
    if plans:
        cfg = IntegrityConfig(plans=tuple(plans))
    if quick:
        cfg = cfg.quick()
    report = integrity_report(cfg)
    rows: List[List[object]] = []
    for arm in ("verify-off", "verify-on", "quarantine"):
        for plan in cfg.plans:
            m = report["arms"][arm]["plans"][plan]
            rows.append([
                plan,
                arm,
                m["sdc_injected"],
                m["sdc_detected"],
                m["corrupted_completed"],
                m["quarantines"],
                m["verification_s"],
                m["goodput_tokens_per_s"],
            ])
    head = report["headline"]
    metrics = {
        "detection_rate_verify_on": float(head["detection_rate_verify_on"]),
        "false_negatives_verify_on": float(
            head["false_negatives_verify_on"]
        ),
        "served_corrupted_verify_off": float(
            head["served_corrupted_verify_off"]
        ),
        "goodput_cost_frac": float(head["goodput_cost_frac"]),
    }
    return Experiment(
        exp_id="ext_integrity",
        title="SDC detection rate vs verification cost (identical seeds)",
        headers=["plan", "arm", "injected", "detected", "served_bad",
                 "quarantined", "verify_s", "goodput_tok_s"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Extension experiment (no paper counterpart): each arm replays "
            "the same workload under the same pinned SDC plan, so rows "
            "differ only by integrity policy.  verify-off serves every "
            "corrupted payload it receives; verify-on catches all of them "
            "(ABFT checksum rows on SpMM outputs, CRC tile digests on "
            "weights, content tags on migrated KV blocks) and reruns the "
            "poisoned requests at a single-digit-percent goodput cost; "
            "quarantine additionally routes around a replica after "
            "repeated detections, cutting injections themselves."
        ),
    )
