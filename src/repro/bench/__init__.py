"""Experiment harness regenerating every table and figure of the paper.

One function per experiment; each returns an :class:`~repro.bench.harness.
Experiment` whose rendered text is written under ``results/`` by the
benchmark suite.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from .ablation_bench import (
    abl_grouptile_size,
    abl_mma_shape,
    abl_quantization,
    abl_split_k,
)
from .accuracy_bench import ext_accuracy
from .chaos_bench import ext_chaos
from .disagg_bench import ext_disaggregation
from .e2e_bench import (
    fig02_breakdown,
    fig13_e2e_rtx4090,
    fig14_e2e_a6000,
    fig15_time_breakdown,
)
from .fleet_bench import ext_fleet
from .format_bench import fig03_compression, fig04_roofline
from .harness import Experiment, format_table, geomean, results_dir
from .integrity_bench import ext_integrity
from .kernel_bench import (
    fig01_motivation,
    fig10_kernel_sweep,
    fig11_smat_comparison,
    fig12_micro_metrics,
    fig16_prefill,
    tab01_ablation,
)
from .memory_bench import ext_memory_walls
from .offload_bench import ext_offloading
from .pipeline_bench import block_pipeline_config, fig09_pipeline_schedule
from .report import generate_report, write_report
from .server_bench import ext_server
from .serving_bench import ext_serving, ext_serving_runtime
from .sweeps import export_csv, kernel_sweep

__all__ = [
    "Experiment",
    "abl_grouptile_size",
    "abl_mma_shape",
    "abl_quantization",
    "abl_split_k",
    "ext_accuracy",
    "ext_chaos",
    "ext_disaggregation",
    "ext_fleet",
    "ext_integrity",
    "ext_memory_walls",
    "ext_offloading",
    "ext_server",
    "ext_serving",
    "ext_serving_runtime",
    "fig01_motivation",
    "fig02_breakdown",
    "fig03_compression",
    "fig04_roofline",
    "fig09_pipeline_schedule",
    "block_pipeline_config",
    "fig10_kernel_sweep",
    "fig11_smat_comparison",
    "fig12_micro_metrics",
    "fig13_e2e_rtx4090",
    "fig14_e2e_a6000",
    "fig15_time_breakdown",
    "fig16_prefill",
    "format_table",
    "generate_report",
    "geomean",
    "write_report",
    "export_csv",
    "kernel_sweep",
    "results_dir",
    "tab01_ablation",
]
