"""End-to-end experiments: Figs. 2, 13, 14, 15.

All runs use Wanda-level sparsity (60 %), the setting of the paper's
framework evaluation, and a 64-token prompt (FT benchmark convention).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..llm.inference import InferenceConfig, simulate_inference
from .harness import Experiment, geomean

__all__ = [
    "fig02_breakdown",
    "fig13_e2e_rtx4090",
    "fig14_e2e_a6000",
    "fig15_time_breakdown",
]

#: Frameworks compared end to end, with the sparsity each one runs.
E2E_FRAMEWORKS: Tuple[Tuple[str, float], ...] = (
    ("spinfer", 0.6),
    ("flash-llm", 0.6),
    ("fastertransformer", 0.0),
    ("deepspeed", 0.0),
)

PROMPT_LEN = 64


def fig02_breakdown() -> Experiment:
    """Fig. 2: OPT-13B runtime and memory breakdown (FT, 2x RTX4090)."""
    cfg = InferenceConfig(
        model="opt-13b",
        framework="fastertransformer",
        gpu="RTX4090",
        num_gpus=2,
        batch_size=16,
        prompt_len=PROMPT_LEN,
        output_len=256,
        sparsity=0.0,
    )
    r = simulate_inference(cfg)
    total = r.total_s
    decode = r.decode
    prefill = r.prefill
    gemm = decode.linear_s + prefill.linear_s
    mha = decode.attention_s + prefill.attention_s
    comm = decode.comm_s + prefill.comm_s
    other = decode.other_s + prefill.other_s
    mem = r.memory
    model_mem = mem.weights + mem.embeddings
    mem_total = mem.total - mem.overhead  # Nsight-style: exclude CUDA context
    rows = [
        ["runtime", "gemm", gemm / total],
        ["runtime", "mha", mha / total],
        ["runtime", "comm", comm / total],
        ["runtime", "other", other / total],
        ["memory", "weights", model_mem / mem_total],
        ["memory", "kv_cache", mem.kv_cache / mem_total],
        ["memory", "activations", mem.activations / mem_total],
    ]
    return Experiment(
        exp_id="fig02",
        title="OPT-13B breakdown on 2x RTX4090 (FasterTransformer, BS=16)",
        headers=["dimension", "component", "share"],
        rows=rows,
        metrics={
            "gemm_time_share": gemm / total,
            "weight_memory_share": model_mem / mem_total,
        },
        notes="Paper: weights are 87.6% of memory; GEMM is 61.6% of time.",
    )


def _e2e_sweep(
    exp_id: str,
    gpu: str,
    cases: Sequence[Tuple[str, int, int]],  # (model, num_gpus, batch)
    output_lens: Sequence[int] = (64, 128, 256, 512, 1024),
) -> Experiment:
    rows: List[List[object]] = []
    speedups: Dict[str, List[float]] = {
        fw: [] for fw, _s in E2E_FRAMEWORKS if fw != "spinfer"
    }
    spinfer_tps_max = 0.0
    for model, num_gpus, batch in cases:
        for out_len in output_lens:
            per_fw = {}
            for fw, sparsity in E2E_FRAMEWORKS:
                cfg = InferenceConfig(
                    model=model,
                    framework=fw,
                    gpu=gpu,
                    num_gpus=num_gpus,
                    batch_size=batch,
                    prompt_len=PROMPT_LEN,
                    output_len=out_len,
                    sparsity=sparsity,
                )
                r = simulate_inference(cfg)
                per_fw[fw] = r
                rows.append(
                    [
                        model,
                        num_gpus,
                        batch,
                        out_len,
                        fw,
                        "OOM" if r.oom else round(r.tokens_per_second, 1),
                        round(r.memory_gb, 1),
                    ]
                )
            sp = per_fw["spinfer"]
            if not sp.oom:
                spinfer_tps_max = max(spinfer_tps_max, sp.tokens_per_second)
                for fw in speedups:
                    other = per_fw[fw]
                    if not other.oom:
                        speedups[fw].append(
                            other.total_s / sp.total_s
                        )
    metrics = {
        f"avg_speedup_vs_{fw.replace('-', '_')}": geomean(vals)
        for fw, vals in speedups.items()
        if vals
    }
    metrics["spinfer_max_tokens_per_s"] = spinfer_tps_max
    return Experiment(
        exp_id=exp_id,
        title=f"End-to-end OPT inference on {gpu}",
        headers=["model", "gpus", "batch", "out_len", "framework",
                 "tokens_per_s", "mem_gb"],
        rows=rows,
        metrics=metrics,
        notes=(
            "Paper (RTX4090): SpInfer avg speedups 1.35x/1.42x/1.49x over "
            "Flash-LLM/FT/DS; (A6000): 1.29x/1.36x/1.55x. OOM cells mark "
            "configurations the framework cannot fit."
        ),
    )


def fig13_e2e_rtx4090(
    output_lens: Sequence[int] = (64, 128, 256, 512, 1024),
) -> Experiment:
    """Fig. 13: OPT-13B / OPT-30B on RTX4090s (1, 2 and 4 GPUs)."""
    cases = [
        ("opt-13b", 1, 8),
        ("opt-13b", 1, 32),
        ("opt-13b", 2, 16),
        ("opt-13b", 2, 32),
        ("opt-30b", 2, 8),
        ("opt-30b", 2, 16),
        ("opt-30b", 4, 16),
        ("opt-30b", 4, 32),
    ]
    return _e2e_sweep("fig13_rtx4090", "RTX4090", cases, output_lens)


def fig14_e2e_a6000(
    output_lens: Sequence[int] = (64, 128, 256, 512, 1024),
) -> Experiment:
    """Fig. 14: OPT-30B / OPT-66B on A6000s (1, 2 and 4 GPUs)."""
    cases = [
        ("opt-30b", 1, 8),
        ("opt-30b", 1, 16),
        ("opt-30b", 2, 16),
        ("opt-30b", 2, 32),
        ("opt-66b", 2, 8),
        ("opt-66b", 2, 16),
        ("opt-66b", 4, 16),
        ("opt-66b", 4, 32),
    ]
    return _e2e_sweep("fig14_a6000", "A6000", cases, output_lens)


def fig15_time_breakdown() -> Experiment:
    """Fig. 15: where end-to-end time goes, per framework.

    Includes the paper's headline asymmetry: SpInfer fits OPT-13B on one
    RTX4090 and so pays zero inter-GPU communication, while dense
    frameworks need two GPUs over PCIe.
    """
    rows: List[List[object]] = []
    shares = {}
    cases = [
        ("spinfer", 0.6, 1),  # fits on one GPU: zero communication
        ("spinfer", 0.6, 2),  # equivalent-configuration comparison
        ("flash-llm", 0.6, 2),
        ("fastertransformer", 0.0, 2),
        ("deepspeed", 0.0, 2),
    ]
    for fw, sparsity, num_gpus in cases:
        cfg = InferenceConfig(
            model="opt-13b",
            framework=fw,
            gpu="RTX4090",
            num_gpus=num_gpus,
            batch_size=16,
            prompt_len=PROMPT_LEN,
            output_len=256,
            sparsity=sparsity,
        )
        r = simulate_inference(cfg)
        total = r.total_s
        linear = r.decode.linear_s + r.prefill.linear_s
        mha = r.decode.attention_s + r.prefill.attention_s
        comm = r.decode.comm_s + r.prefill.comm_s
        other = r.decode.other_s + r.prefill.other_s
        shares[(fw, num_gpus)] = {"linear": linear, "total": total, "comm": comm}
        rows.append([fw, num_gpus, total, linear, mha, comm, other])
    return Experiment(
        exp_id="fig15",
        title="End-to-end time breakdown, OPT-13B BS=16 out=256 (RTX4090)",
        headers=["framework", "gpus", "total_s", "linear_s", "mha_s", "comm_s",
                 "other_s"],
        rows=rows,
        metrics={
            "spinfer_1gpu_comm_s": shares[("spinfer", 1)]["comm"],
            "spinfer_linear_vs_ft_2gpu": (
                shares[("spinfer", 2)]["linear"]
                / shares[("fastertransformer", 2)]["linear"]
            ),
            "spinfer_total_vs_ft_2gpu": (
                shares[("spinfer", 2)]["total"]
                / shares[("fastertransformer", 2)]["total"]
            ),
        },
        notes=(
            "Paper: SpMM/GEMM dominates every framework; SpInfer's SpMM is "
            "fastest, and its 1-GPU fit eliminates communication entirely "
            "on the PCIe-only RTX4090 box."
        ),
    )
