"""Flash-LLM's Load-as-Sparse-Compute-as-Dense SpMM (Xia et al., 2023).

The kernel loads Tiled-CSL ``NonZeros`` words into the register file with
``LDG.128``, unpacks them into a dense shared-memory tile (a data-driven
scatter that eats bank conflicts — paper Fig. 7 and Fig. 12), and then
computes dense mma math on the reconstructed tile.  Traffic follows Eq. 2:
4 bytes per non-zero, so at 50 % sparsity Flash-LLM reads exactly as many
weight bytes as cuBLAS reads for the dense matrix — the reason it only
breaks even there (paper Fig. 1).
"""

from __future__ import annotations

import numpy as np

from ..formats.tiled_csl import DEFAULT_TILE, TiledCSLMatrix
from ..gpu.simulator import Traffic, Work
from .base import SpMMKernel, SpMMProblem

__all__ = ["FlashLLMKernel"]


class FlashLLMKernel(SpMMKernel):
    """Tiled-CSL SpMM: register-file unpack, then dense Tensor-Core math."""

    name = "flash_llm"

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        w = TiledCSLMatrix.from_dense(w_dense)
        return self.run_encoded(w, x)

    def run_encoded(
        self, w: TiledCSLMatrix, x: np.ndarray, verify: bool = False
    ) -> np.ndarray:
        """SpMM against a pre-encoded Tiled-CSL matrix (batched unpack).

        Scatters every tile's (location, value) run into a stacked tile
        buffer at once ("load as sparse"), multiplies via one stacked
        matmul ("compute as dense"), and accumulates tile columns in the
        same order as :meth:`run_encoded_reference` — bit-identical
        output, no Python loop over tiles.

        With ``verify=True`` the matrix must be sealed
        (:meth:`~repro.formats.tiled_csl.TiledCSLMatrix.seal`): per-tile
        digests are checked before the unpack and the ABFT column-sum
        check runs on the product; either failure raises
        :class:`~repro.integrity.abft.IntegrityError` instead of
        returning corrupted output.
        """
        if verify:
            self._verify_seal(w)
        th, tw = w.tile_shape
        rows, cols = w.tile_grid
        x32, _pk = self._padded_activation(w, x)
        n = x32.shape[1]

        tiles = np.zeros((rows * cols, th * tw), dtype=np.float32)
        tile_ids = np.repeat(
            np.arange(rows * cols, dtype=np.int64),
            np.diff(w.tile_offsets.astype(np.int64)),
        )
        tiles[tile_ids, w.locations.astype(np.int64)] = w.values.astype(
            np.float32
        )
        # (rows, cols, th, tw) @ (cols, tw, n) -> (rows, cols, th, n); the
        # 2-D slices are the same sgemms the reference loop issues.
        partial = tiles.reshape(rows, cols, th, tw) @ x32.reshape(cols, tw, n)
        out = np.zeros((rows, th, n), dtype=np.float32)
        for tc in range(cols):  # in-order adds match the reference walk
            out += partial[:, tc]
        result = out.reshape(rows * th, n)[: w.m]
        if verify:
            from ..integrity.abft import verify_output

            verify_output(result, x, w.checksum_row, where=self.name)
        return result

    @staticmethod
    def _verify_seal(w: TiledCSLMatrix) -> None:
        from ..integrity.abft import IntegrityError

        if not w.sealed:
            raise IntegrityError(
                "verify=True needs a sealed Tiled-CSL matrix; call "
                "seal() at encode time"
            )
        bad = w.corrupted_tiles()
        if bad:
            raise IntegrityError(
                f"Tiled-CSL digest mismatch in tile(s) {bad}: stored "
                "weights were corrupted after sealing"
            )

    def run_encoded_reference(self, w: TiledCSLMatrix, x: np.ndarray) -> np.ndarray:
        """Per-tile scalar walk (the retained reference SpMM path).

        Unpacks one tile's run at a time into a dense tile buffer and
        accumulates per-tile matmuls — the pre-vectorisation hot path,
        kept for bit-exact differential testing against :meth:`run_encoded`.
        """
        th, tw = w.tile_shape
        rows, cols = w.tile_grid
        x32, _pk = self._padded_activation(w, x)

        out = np.zeros((rows * th, x32.shape[1]), dtype=np.float32)
        tile_buffer = np.empty(th * tw, dtype=np.float32)
        for t in range(rows * cols):
            locs, vals = w.tile_slice(t)
            if locs.size == 0:
                continue  # nothing to unpack; dense math on zeros is a no-op
            tile_buffer[:] = 0.0
            tile_buffer[locs] = vals.astype(np.float32)
            tr, tc = divmod(t, cols)
            out[tr * th : (tr + 1) * th] += tile_buffer.reshape(th, tw) @ x32[
                tc * tw : (tc + 1) * tw
            ]
        return out[: w.m]

    @staticmethod
    def _padded_activation(
        w: TiledCSLMatrix, x: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """FP32 activation zero-padded to whole tiles of K."""
        if w.k != x.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: W is {w.shape}, X is {x.shape}"
            )
        _rows, cols = w.tile_grid
        tw = w.tile_shape[1]
        x32 = np.asarray(x, dtype=np.float16).astype(np.float32)
        pk = cols * tw
        if pk != x32.shape[0]:
            pad = np.zeros((pk - x32.shape[0], x32.shape[1]), dtype=np.float32)
            x32 = np.vstack([x32, pad])
        return x32, pk

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        th, tw = DEFAULT_TILE
        num_tiles = (-(-problem.m // th)) * (-(-problem.k // tw))
        weight = 4.0 * num_tiles + 4.0 * problem.nnz  # Eq. 2
        return Traffic(
            weight_bytes=weight,
            activation_bytes=self._activation_bytes(problem),
            output_bytes=self._output_bytes(problem),
        )

    def _work(self, problem: SpMMProblem) -> Work:
        return Work(
            tc_flops=problem.dense_flops,
            decode_values=float(problem.nnz),
        )
