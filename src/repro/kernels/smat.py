"""SMaT — BSR Tensor-Core SpMM for scientific sparsity (Okanovic 2024).

SMaT stores the matrix in 16x16 BSR blocks and simply *skips* empty
blocks: both their traffic and their mma math vanish.  On scientific
matrices beyond ~99.7 % sparsity (with clustered non-zeros) almost every
block disappears and SMaT wins; at LLM pruning levels essentially every
block is occupied, the format degenerates to dense-plus-index storage,
and SpInfer leads by >2x (paper Fig. 11).
"""

from __future__ import annotations

import numpy as np

from ..formats.bsr import DEFAULT_BLOCK, BSRMatrix, bsr_storage_bytes
from ..gpu.simulator import Traffic, Work
from .base import SpMMKernel, SpMMProblem

__all__ = ["SMaTKernel"]


class SMaTKernel(SpMMKernel):
    """Block-skipping BSR SpMM on Tensor Cores."""

    name = "smat"

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        w = BSRMatrix.from_dense(w_dense)
        return self.run_encoded(w, x)

    def run_encoded(self, w: BSRMatrix, x: np.ndarray) -> np.ndarray:
        """Walk stored blocks only — absent blocks cost nothing."""
        if w.k != x.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: W is {w.shape}, X is {x.shape}"
            )
        bh, bw = w.block_shape
        x32 = np.asarray(x, dtype=np.float16).astype(np.float32)
        pk = -(-w.k // bw) * bw
        if pk != x32.shape[0]:
            pad = np.zeros((pk - x32.shape[0], x32.shape[1]), dtype=np.float32)
            x32 = np.vstack([x32, pad])

        block_rows = w.block_row_ptr.size - 1
        out = np.zeros((block_rows * bh, x32.shape[1]), dtype=np.float32)
        brow_ids = np.repeat(
            np.arange(block_rows), np.diff(w.block_row_ptr.astype(np.int64))
        )
        for b, (br, bc) in enumerate(zip(brow_ids, w.block_col_idx)):
            out[br * bh : (br + 1) * bh] += w.blocks[b].astype(np.float32) @ x32[
                bc * bw : (bc + 1) * bw
            ]
        return out[: w.m]

    def _occupied_fraction(self, problem: SpMMProblem) -> float:
        if problem.block_occupancy is not None:
            return problem.block_occupancy
        bh, bw = DEFAULT_BLOCK
        # Uniform sparsity: a block is empty only if all bh*bw elements are.
        return 1.0 - problem.sparsity ** (bh * bw)

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        bh, bw = DEFAULT_BLOCK
        total_blocks = (-(-problem.m // bh)) * (-(-problem.k // bw))
        occupied = int(round(total_blocks * self._occupied_fraction(problem)))
        return Traffic(
            weight_bytes=float(bsr_storage_bytes(problem.m, occupied)),
            activation_bytes=self._activation_bytes(problem),
            output_bytes=self._output_bytes(problem),
        )

    def _work(self, problem: SpMMProblem) -> Work:
        bh, bw = DEFAULT_BLOCK
        frac = self._occupied_fraction(problem)
        # Only occupied blocks reach the Tensor Cores.
        return Work(tc_flops=problem.dense_flops * frac)
