"""cuSPARSE-style generic CSR SpMM — the vendor library baseline.

cuSPARSE's CSR algorithms are tuned for scientific matrices (high
sparsity, many dense columns).  On LLM decode shapes — a tall weight
matrix against an 8–32 column panel at 40–70 % sparsity — its row-split
gathers are badly uncoalesced and it lands an order of magnitude behind
cuBLAS (paper Fig. 10 reports SpInfer 18–25x faster).  Numerics are the
same CSR product as Sputnik's; only the achieved efficiencies differ.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix, csr_storage_bytes
from ..gpu.simulator import Traffic, Work
from .base import SpMMKernel, SpMMProblem
from .sputnik import csr_spmm

__all__ = ["CuSparseKernel"]


class CuSparseKernel(SpMMKernel):
    """Generic CSR SpMM with scientific-workload heuristics."""

    name = "cusparse"

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        return csr_spmm(CSRMatrix.from_dense(w_dense), x)

    def _uses_split_k(self) -> bool:
        return False

    def _grid_blocks(self, problem: SpMMProblem, split_k: int) -> int:
        # 1-D row tiling: one thread block per 32-row strip.
        return max(1, -(-problem.m // 32)) * split_k

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        return Traffic(
            weight_bytes=float(csr_storage_bytes(problem.m, problem.nnz)),
            activation_bytes=self._activation_bytes(problem),
            output_bytes=self._output_bytes(problem),
        )

    def _work(self, problem: SpMMProblem) -> Work:
        return Work(
            cuda_flops=problem.sparse_flops,
            decode_values=float(problem.nnz),
        )
