"""Dense Tensor-Core GEMM — the cuBLAS baseline every figure normalises to.

cuBLAS represents the ideal data path of paper Fig. 7: ``LDGSTS`` moves
operand tiles straight from global to shared memory, bypassing L1 and the
register file, and Tensor Cores run near peak.  Sparsity buys it nothing:
it always reads the full ``2B * M * K`` weight panel.
"""

from __future__ import annotations

import numpy as np

from ..gpu.simulator import Traffic, Work
from .base import SpMMKernel, SpMMProblem

__all__ = ["CuBLASKernel"]


class CuBLASKernel(SpMMKernel):
    """FP16 Tensor-Core GEMM with FP32 accumulation."""

    name = "cublas_tc"

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        w16 = np.asarray(w_dense, dtype=np.float16)
        x16 = np.asarray(x, dtype=np.float16)
        # FP16 multiplicands, FP32 accumulate — the mma contract.
        return w16.astype(np.float32) @ x16.astype(np.float32)

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        return Traffic(
            weight_bytes=2.0 * problem.m * problem.k,
            activation_bytes=self._activation_bytes(problem),
            output_bytes=self._output_bytes(problem),
        )

    def _work(self, problem: SpMMProblem) -> Work:
        return Work(tc_flops=problem.dense_flops)
