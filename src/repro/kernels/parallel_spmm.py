"""Tensor-parallel SpMM: sharded sparse kernels plus collectives.

The paper's multi-GPU runs shard every weight matrix Megatron-style.
This module executes that sharding *numerically*: the weight matrix is
split across simulated ranks (column- or row-parallel), each rank runs
its functional sparse kernel on its shard, and the partial results are
combined with the executable collectives — verifying that the sharded
sparse computation is exactly the unsharded product, encoding included.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import SpMMKernel
from .spinfer import SpInferKernel

__all__ = ["column_parallel_spmm", "row_parallel_spmm", "shard_rows", "shard_cols"]


def shard_rows(matrix: np.ndarray, ranks: int) -> List[np.ndarray]:
    """Split output rows (column-parallel linear: W is (out, in))."""
    if ranks <= 0:
        raise ValueError("ranks must be positive")
    m = matrix.shape[0]
    bounds = [m * r // ranks for r in range(ranks + 1)]
    return [matrix[bounds[r] : bounds[r + 1]] for r in range(ranks)]


def shard_cols(matrix: np.ndarray, ranks: int) -> List[np.ndarray]:
    """Split input columns (row-parallel linear)."""
    if ranks <= 0:
        raise ValueError("ranks must be positive")
    k = matrix.shape[1]
    bounds = [k * r // ranks for r in range(ranks + 1)]
    return [matrix[:, bounds[r] : bounds[r + 1]] for r in range(ranks)]


def column_parallel_spmm(
    w_dense: np.ndarray,
    x: np.ndarray,
    ranks: int,
    kernel: SpMMKernel = None,
) -> np.ndarray:
    """Column-parallel: each rank owns an output-row shard of ``W``.

    Every rank sees the full ``X``, computes its output slice with the
    sparse kernel, and the slices are all-gathered.  (QKV and FFN-up
    projections run this way.)
    """
    from ..llm.collectives import allgather  # deferred: llm imports kernels

    kernel = kernel or SpInferKernel()
    shards = shard_rows(np.asarray(w_dense), ranks)
    partials = [kernel.run(s, x) for s in shards if s.shape[0] > 0]
    gathered = allgather([p.reshape(-1) for p in partials])[0]
    return gathered.reshape(w_dense.shape[0], x.shape[1])


def row_parallel_spmm(
    w_dense: np.ndarray,
    x: np.ndarray,
    ranks: int,
    kernel: SpMMKernel = None,
) -> np.ndarray:
    """Row-parallel: each rank owns an input-column shard of ``W``.

    Each rank multiplies its ``W`` shard by the matching ``X`` rows,
    producing a full-shape partial sum; a ring all-reduce combines them.
    (Attention-output and FFN-down projections run this way — the
    all-reduce here is the one the end-to-end comm model charges.)
    """
    from ..llm.collectives import ring_allreduce  # deferred: llm imports kernels

    kernel = kernel or SpInferKernel()
    w = np.asarray(w_dense)
    x = np.asarray(x)
    w_shards = shard_cols(w, ranks)
    k_bounds = [x.shape[0] * r // ranks for r in range(ranks + 1)]
    partials = []
    for r in range(ranks):
        ws = w_shards[r]
        xs = x[k_bounds[r] : k_bounds[r + 1]]
        if ws.shape[1] == 0:
            partials.append(np.zeros((w.shape[0], x.shape[1]), dtype=np.float32))
        else:
            partials.append(kernel.run(ws, xs))
    return ring_allreduce(partials)[0]
