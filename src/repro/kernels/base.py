"""Common machinery for SpMM/GEMM kernels.

Every kernel in this package has two faces:

``run(w_dense, x)``
    A *functional* implementation in numpy that executes the kernel's
    actual algorithm (bitmap decode, Tiled-CSL unpack, 2:4 split, block
    skipping, ...) and returns the numerically correct FP32 product
    ``W @ X``.  These paths are validated against dense matmul in tests.

``profile(problem, gpu)``
    A *performance* prediction from the mechanistic cost model
    (:mod:`repro.gpu.simulator`), using the format's exact storage
    equations for traffic and the kernel's calibration constants.

The paper computes ``O = W_sparse (M x K) @ X (K x N)`` with a tall
weight matrix and a skinny activation panel (decode phase: N = batch
size).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..gpu.calibration import KernelCalibration, get_calibration
from ..gpu.occupancy import occupancy
from ..gpu.simulator import (
    KernelProfile,
    LaunchShape,
    Traffic,
    Work,
    simulate_kernel,
)
from ..gpu.specs import GPUSpec, RTX4090

__all__ = ["SpMMProblem", "SpMMKernel", "choose_split_k"]

#: Thread-block output tile (rows) shared by the tiled kernels; matches
#: the GroupTile height / Flash-LLM's TILE_M.
TILE_M = 64
#: Thread-block output tile (columns); decode-phase N (8..32) fits one.
TILE_N = 32
#: K-dimension slice processed per iteration (GroupTile width).
TILE_K = 64


@dataclass(frozen=True)
class SpMMProblem:
    """One ``O = W @ X`` instance: ``W`` is ``m x k`` sparse, ``X`` is
    ``k x n`` dense FP16."""

    m: int
    k: int
    n: int
    sparsity: float
    #: Fraction of 16x16 blocks containing a non-zero, when known from the
    #: actual mask (clustered scientific patterns); SMaT falls back to the
    #: uniform-sparsity estimate when absent.
    block_occupancy: Optional[float] = None
    #: Measured 2:4-overflow non-zeros, when known; SparTA falls back to
    #: the Eq. 4 expectation when absent.
    sparta_residual_nnz: Optional[int] = None

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError("problem dimensions must be positive")
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError(f"sparsity must be in [0, 1], got {self.sparsity}")
        if self.block_occupancy is not None and not 0.0 <= self.block_occupancy <= 1.0:
            raise ValueError("block_occupancy must be in [0, 1]")
        if self.sparta_residual_nnz is not None and self.sparta_residual_nnz < 0:
            raise ValueError("sparta_residual_nnz cannot be negative")

    @property
    def nnz(self) -> int:
        return int(round(self.m * self.k * (1.0 - self.sparsity)))

    @property
    def dense_flops(self) -> float:
        return 2.0 * self.m * self.k * self.n

    @property
    def sparse_flops(self) -> float:
        return 2.0 * self.nnz * self.n


def choose_split_k(
    problem: SpMMProblem, gpu: GPUSpec, cal: KernelCalibration
) -> int:
    """Pick the split-K factor the way CUTLASS-style launch heuristics do:
    raise it until the grid can occupy the whole chip (paper Section
    4.3.1), bounded by the number of K tiles."""
    occ = occupancy(
        gpu,
        threads_per_block=cal.threads_per_block,
        registers_per_thread=cal.registers_per_thread,
        shared_bytes_per_block=cal.shared_bytes_per_block,
    )
    base_grid = math.ceil(problem.m / TILE_M) * math.ceil(problem.n / TILE_N)
    target = max(1, occ.blocks_per_sm) * gpu.sm_count
    max_split = max(1, problem.k // TILE_K)
    split = 1
    while split < max_split and base_grid * split < target:
        split *= 2
    return min(split, max_split)


class SpMMKernel(abc.ABC):
    """Base class wiring the functional and simulated faces together."""

    #: Calibration-table key; subclasses must set it.
    name: str = "abstract"

    def __init__(self, calibration: Optional[KernelCalibration] = None):
        self.calibration = calibration or get_calibration(self.name)

    # ---- functional path ---------------------------------------------------------

    @abc.abstractmethod
    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Execute the kernel's algorithm; returns ``W @ X`` as float32."""

    @staticmethod
    def _check_operands(w_dense: np.ndarray, x: np.ndarray) -> None:
        if w_dense.ndim != 2 or x.ndim != 2:
            raise ValueError("operands must be 2-D")
        if w_dense.shape[1] != x.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: W is {w_dense.shape}, X is {x.shape}"
            )

    # ---- simulated path ------------------------------------------------------------

    @abc.abstractmethod
    def _traffic(self, problem: SpMMProblem) -> Traffic:
        """DRAM traffic from the kernel's storage format (excl. workspace)."""

    @abc.abstractmethod
    def _work(self, problem: SpMMProblem) -> Work:
        """Arithmetic + decode work of the launch."""

    def _uses_split_k(self) -> bool:
        return True

    def _grid_blocks(self, problem: SpMMProblem, split_k: int) -> int:
        """Launch grid of the kernel; tiled output decomposition by default."""
        return (
            math.ceil(problem.m / TILE_M)
            * math.ceil(problem.n / TILE_N)
            * split_k
        )

    def profile(
        self, problem: SpMMProblem, gpu: GPUSpec = RTX4090
    ) -> KernelProfile:
        """Predict the kernel's execution profile for ``problem`` on ``gpu``."""
        cal = self.calibration
        if cal.tc_n_half > 0:
            # Skinny output panels cap the TC pipe (see KernelCalibration).
            cal = replace(cal, tc_efficiency=cal.tc_efficiency_at(problem.n, gpu))
        split_k = choose_split_k(problem, gpu, cal) if self._uses_split_k() else 1
        grid = self._grid_blocks(problem, split_k)
        traffic = self._traffic(problem)
        if split_k > 1:
            # FP32 partials written by every slice, then re-read and reduced.
            workspace = 2.0 * (4.0 * problem.m * problem.n * split_k)
            traffic = Traffic(
                weight_bytes=traffic.weight_bytes,
                activation_bytes=traffic.activation_bytes,
                output_bytes=traffic.output_bytes,
                workspace_bytes=traffic.workspace_bytes + workspace,
            )
        return simulate_kernel(
            gpu, cal, LaunchShape(grid_blocks=grid), traffic, self._work(problem)
        )

    # ---- shared traffic helpers ------------------------------------------------------

    @staticmethod
    def _activation_bytes(problem: SpMMProblem) -> float:
        """X panel traffic: read once (it fits L2 for decode-phase N)."""
        return 2.0 * problem.k * problem.n

    @staticmethod
    def _output_bytes(problem: SpMMProblem) -> float:
        return 2.0 * problem.m * problem.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
