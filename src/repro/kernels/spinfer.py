"""The SpInfer-SpMM kernel (paper Section 4.3).

Functional path: encodes ``W`` in TCA-BME, walks GroupTiles exactly as a
thread block does — each iteration decodes a WTile out of the compressed
value stream with Shared-Memory Bitmap Decoding and multiplies it against
the matching XTile — and accumulates in FP32.  Two decode routes exist:

* :meth:`SpInferKernel.run` uses the vectorised SMBD (fast, bit-identical);
* :meth:`SpInferKernel.run_fragment_path` drives the lane-faithful SMBD
  (:func:`repro.core.smbd.decode_group`) into per-warp ``mma.m16n8k16``
  fragment math — the instruction-accurate route used to validate the
  register-level decode on small matrices.

Simulated path: TCA-BME traffic per Eq. 9 plus SMBD decode work on the
integer pipes, overlapped (or not, for ablations) per the asynchronous
pipeline of Section 4.3.4.  The ablation variants of Table 1 are selected
by ``variant``:

``"full"``       SMBD + AsyncPipe (the shipping kernel)
``"no_smbd"``    register-file decode path, no overlap, conflicted writes
``"no_async"``   SMBD but serialised pipeline stages
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.smbd import DecodeStats, decode_group, decode_group_fast, decode_matrix
from ..core.tca_bme import TCABMEMatrix, encode, tca_bme_storage_bytes
from ..core.tiles import DEFAULT_TILE_CONFIG, TileConfig
from ..gpu.simulator import Traffic, Work
from ..gpu.tensor_core import warp_tile_matmul
from .base import SpMMKernel, SpMMProblem

__all__ = ["SpInferKernel"]

_VARIANTS = {
    "full": "spinfer",
    "no_smbd": "spinfer_no_smbd",
    "no_async": "spinfer_no_async",
}


class SpInferKernel(SpMMKernel):
    """TCA-BME SpMM with SMBD and the depth-2 asynchronous pipeline."""

    name = "spinfer"

    def __init__(
        self,
        variant: str = "full",
        tile_config: TileConfig = DEFAULT_TILE_CONFIG,
    ):
        if variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; options: {sorted(_VARIANTS)}"
            )
        self.variant = variant
        self.name = _VARIANTS[variant]
        self.tile_config = tile_config
        super().__init__()
        self.last_decode_stats: Optional[DecodeStats] = None

    # ---- functional path ---------------------------------------------------------

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        return self.run_encoded(encode(w_dense, self.tile_config), x)

    def run_encoded(
        self, w: TCABMEMatrix, x: np.ndarray, verify: bool = False
    ) -> np.ndarray:
        """SpMM against a pre-encoded weight matrix (batched SMBD).

        Every GroupTile is decoded in one batched scatter
        (:func:`repro.core.smbd.decode_matrix`) and multiplied via one
        stacked matmul; partial products are accumulated group-column by
        group-column in storage order, so the result is bit-identical to
        the per-GroupTile walk of :meth:`run_encoded_reference`.

        With ``verify=True`` the matrix must be sealed
        (:meth:`~repro.core.tca_bme.TCABMEMatrix.seal`): per-GroupTile
        digests are checked before decoding and the ABFT column-sum
        check runs on the product; either failure raises
        :class:`~repro.integrity.abft.IntegrityError` instead of
        returning corrupted output.
        """
        if verify:
            self._verify_seal(w)
        x32, pm, pk = self._padded_activation(w, x)
        cfg = w.config
        n = x32.shape[1]
        grows, gcols = cfg.group_grid(w.m, w.k)

        tiles, stats = decode_matrix(w.bitmaps, w.values, w.m, w.k, cfg)
        # (GR, GC, gt_h, gt_w) @ (GC, gt_w, n) -> (GR, GC, gt_h, n); each
        # 2-D slice is the same sgemm the reference loop issues per group.
        partial = tiles.astype(np.float32) @ x32.reshape(gcols, cfg.gt_w, n)
        out = np.zeros((grows, cfg.gt_h, n), dtype=np.float32)
        for gc in range(gcols):  # in-order adds match the reference walk
            out += partial[:, gc]
        self.last_decode_stats = stats
        result = out.reshape(pm, n)[: w.m]
        if verify:
            from ..integrity.abft import verify_output

            verify_output(result, x, w.checksum_row, where=self.name)
        return result

    @staticmethod
    def _verify_seal(w: TCABMEMatrix) -> None:
        from ..integrity.abft import IntegrityError

        if not w.sealed:
            raise IntegrityError(
                "verify=True needs a sealed TCA-BME matrix; call seal() "
                "at encode time"
            )
        bad = w.corrupted_groups()
        if bad:
            raise IntegrityError(
                f"TCA-BME digest mismatch in GroupTile(s) {bad}: stored "
                "weights were corrupted after sealing"
            )

    def run_encoded_reference(self, w: TCABMEMatrix, x: np.ndarray) -> np.ndarray:
        """Per-GroupTile scalar walk (the retained reference SpMM path).

        Decodes one GroupTile at a time along ``iter_group_tiles`` and
        accumulates per-group matmuls — the pre-vectorisation hot path,
        kept for bit-exact differential testing against :meth:`run_encoded`.
        """
        x32, pm, _pk = self._padded_activation(w, x)
        cfg = w.config
        out = np.zeros((pm, x32.shape[1]), dtype=np.float32)
        stats = DecodeStats()
        for g, (gr, gc) in enumerate(cfg.iter_group_tiles(w.m, w.k)):
            tile, tile_stats = decode_group_fast(
                w.group_bitmaps(g), w.group_values(g), cfg
            )
            stats.merge(tile_stats)
            out[gr : gr + cfg.gt_h] += tile.astype(np.float32) @ x32[
                gc : gc + cfg.gt_w
            ]
        self.last_decode_stats = stats
        return out[: w.m]

    def _padded_activation(
        self, w: TCABMEMatrix, x: np.ndarray
    ) -> tuple[np.ndarray, int, int]:
        """FP32 activation zero-padded to whole GroupTiles of K."""
        if w.k != x.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: W is {w.shape}, X is {x.shape}"
            )
        x32 = np.asarray(x, dtype=np.float16).astype(np.float32)
        pm, pk = w.config.padded_shape(w.m, w.k)
        if pk != x32.shape[0]:
            pad = np.zeros((pk - x32.shape[0], x32.shape[1]), dtype=np.float32)
            x32 = np.vstack([x32, pad])
        return x32, pm, pk

    def run_fragment_path(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Instruction-accurate route: lane-faithful SMBD into mma fragments.

        Exercises MaskedPopCount offset computation per lane and the
        ``mma.m16n8k16`` fragment layouts end to end.  Quadratically
        slower than :meth:`run`; intended for validation on small shapes.
        """
        self._check_operands(w_dense, x)
        w = encode(w_dense, self.tile_config)
        cfg = w.config
        x16 = np.asarray(x, dtype=np.float16)
        pm, pk = cfg.padded_shape(w.m, w.k)
        n = x16.shape[1]
        pn = -(-n // 8) * 8  # B panels feed mma in 16x8 slices
        xp = np.zeros((pk, pn), dtype=np.float16)
        xp[: x16.shape[0], :n] = x16

        out = np.zeros((pm, pn), dtype=np.float32)
        stats = DecodeStats()
        for g, (gr, gc) in enumerate(cfg.iter_group_tiles(w.m, w.k)):
            frags = decode_group(
                w.group_bitmaps(g), w.group_values(g), cfg, stats
            )
            for t, (tr, tc) in enumerate(cfg.iter_tctiles_in_group()):
                row = gr + tr
                col = gc + tc
                acc = out[row : row + 16]
                out[row : row + 16] = warp_tile_matmul(
                    frags[t], xp[col : col + 16], acc
                )
        self.last_decode_stats = stats
        return out[: w.m, :n]

    # ---- simulated path ------------------------------------------------------------

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        weight = float(
            tca_bme_storage_bytes(
                problem.m, problem.k, problem.nnz, self.tile_config
            )
        )
        return Traffic(
            weight_bytes=weight,
            activation_bytes=self._activation_bytes(problem),
            output_bytes=self._output_bytes(problem),
        )

    def _work(self, problem: SpMMProblem) -> Work:
        # Compute-as-dense: decoded tiles run full mma math regardless of
        # sparsity; SMBD charges per surviving value.
        return Work(
            tc_flops=problem.dense_flops,
            decode_values=float(problem.nnz),
        )
