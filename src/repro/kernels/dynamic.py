"""Dynamic activation sparsity — the paper's Section 6 future-work item.

SpInfer targets static *weight* sparsity; Deja Vu / PowerInfer-style
systems exploit runtime *activation* sparsity instead.  Section 6 notes
that combining the two "would require adaptive sparse encoding".  This
module prototypes that combination on top of TCA-BME:

The K dimension of ``W @ X`` is tiled in GroupTile columns (64 rows of
``X``).  A K-slice whose activation rows are all (near-)zero contributes
nothing to the product, so the kernel can skip the corresponding
GroupTiles *of the already-encoded weight matrix* — no re-encoding, just
a runtime slice mask derived from ``X``.  Weight traffic, decode work
and Tensor-Core math all shrink by the inactive fraction.

Skipping exactly-zero slices is lossless; a magnitude threshold
(CATS-style) trades bounded error for more skipping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.smbd import decode_group_fast
from ..core.tca_bme import TCABMEMatrix, encode
from ..gpu.simulator import KernelProfile
from ..gpu.specs import GPUSpec, RTX4090
from .base import SpMMProblem
from .spinfer import SpInferKernel

__all__ = ["ActivationSliceMask", "DynamicSpInferKernel", "relu_sparsify"]


def relu_sparsify(x: np.ndarray) -> np.ndarray:
    """ReLU the activations — the sparsity source Deja Vu-style systems
    exploit (OPT's FFN activations are ReLU outputs)."""
    x = np.asarray(x, dtype=np.float16)
    return np.maximum(x, np.float16(0))


@dataclass
class ActivationSliceMask:
    """Which GroupTile-column K-slices of ``X`` are active."""

    active: np.ndarray  # bool, one per K-slice of gt_w rows
    slice_rows: int

    @property
    def active_fraction(self) -> float:
        return float(self.active.mean()) if self.active.size else 1.0

    @classmethod
    def from_activations(
        cls, x: np.ndarray, slice_rows: int = 64, threshold: float = 0.0
    ) -> "ActivationSliceMask":
        """Mark a slice active if any element's magnitude exceeds
        ``threshold`` (0.0 = lossless: skip only exactly-zero slices)."""
        if slice_rows <= 0:
            raise ValueError("slice_rows must be positive")
        if threshold < 0:
            raise ValueError("threshold cannot be negative")
        x = np.asarray(x)
        k = x.shape[0]
        slices = -(-k // slice_rows)
        active = np.zeros(slices, dtype=bool)
        for s in range(slices):
            block = x[s * slice_rows : (s + 1) * slice_rows]
            active[s] = bool((np.abs(block.astype(np.float32)) > threshold).any())
        return cls(active=active, slice_rows=slice_rows)


class DynamicSpInferKernel(SpInferKernel):
    """SpInfer-SpMM with runtime K-slice skipping.

    ``threshold = 0`` skips only exactly-zero activation slices
    (lossless); larger thresholds approximate, zeroing sub-threshold
    slices before the multiply.
    """

    def __init__(self, threshold: float = 0.0):
        super().__init__(variant="full")
        if threshold < 0:
            raise ValueError("threshold cannot be negative")
        self.threshold = threshold
        self.last_slice_mask: Optional[ActivationSliceMask] = None

    def run_encoded(self, w: TCABMEMatrix, x: np.ndarray) -> np.ndarray:
        if w.k != x.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: W is {w.shape}, X is {x.shape}"
            )
        cfg = w.config
        mask = ActivationSliceMask.from_activations(
            x, slice_rows=cfg.gt_w, threshold=self.threshold
        )
        self.last_slice_mask = mask

        x32 = np.asarray(x, dtype=np.float16).astype(np.float32)
        pm, pk = cfg.padded_shape(w.m, w.k)
        if pk != x32.shape[0]:
            pad = np.zeros((pk - x32.shape[0], x32.shape[1]), dtype=np.float32)
            x32 = np.vstack([x32, pad])

        out = np.zeros((pm, x32.shape[1]), dtype=np.float32)
        for g, (gr, gc) in enumerate(cfg.iter_group_tiles(w.m, w.k)):
            k_slice = gc // cfg.gt_w
            if k_slice < mask.active.size and not mask.active[k_slice]:
                continue  # dead activations: skip load + decode + mma
            tile, _stats = decode_group_fast(
                w.group_bitmaps(g), w.group_values(g), cfg
            )
            out[gr : gr + cfg.gt_h] += tile.astype(np.float32) @ x32[
                gc : gc + cfg.gt_w
            ]
        return out[: w.m]

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        return self.run_encoded(encode(w_dense, self.tile_config), x)

    # ---- cost model --------------------------------------------------------------

    def profile_dynamic(
        self,
        problem: SpMMProblem,
        active_fraction: float,
        gpu: GPUSpec = RTX4090,
    ) -> KernelProfile:
        """Profile with a known fraction of active K-slices.

        Weight traffic, decode work and mma math scale with the active
        fraction; the activation panel is still scanned once to build
        the slice mask.
        """
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError("active_fraction must be in (0, 1]")
        scaled = SpMMProblem(
            m=problem.m,
            k=max(64, int(problem.k * active_fraction) // 64 * 64),
            n=problem.n,
            sparsity=problem.sparsity,
        )
        profile = self.profile(scaled, gpu)
        # Add the full X scan the slice-mask construction needs.
        extra_x = 2.0 * (problem.k - scaled.k) * problem.n
        profile.dram_bytes += extra_x
        profile.time_s += extra_x / gpu.dram_bandwidth_bytes
        return profile
