"""Cost-model-driven kernel selection.

A deployment rarely wants one kernel unconditionally: Fig. 10 says
SpInfer for decode shapes, Fig. 16 says dense GEMM once the batch turns
the matmul compute-bound, and Fig. 11 says block-skipping kernels for
clustered scientific sparsity.  The dispatcher encodes that decision the
way the cost model justifies it — predict every candidate, pick the
fastest — with a flag for whether a dense weight copy even exists (the
cuBLAS path needs one, and keeping it doubles weight memory).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from ..gpu.simulator import KernelProfile
from ..gpu.specs import GPUSpec, RTX4090
from .base import SpMMKernel, SpMMProblem

__all__ = ["DispatchDecision", "KernelDispatcher"]

#: Kernels consuming the sparse encoding (no dense copy required).
_SPARSE_CANDIDATES = ("spinfer", "flash_llm", "sparta", "sputnik", "smat")


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of one dispatch query."""

    kernel_name: str
    profile: KernelProfile
    #: Predicted time of the runner-up, for margin reporting.
    runner_up: Optional[str]
    runner_up_time_s: Optional[float]

    @property
    def margin(self) -> float:
        """How much slower the runner-up is (1.0 = tie)."""
        if self.runner_up_time_s is None:
            return 1.0
        return self.runner_up_time_s / self.profile.time_s


class KernelDispatcher:
    """Selects the fastest kernel per problem from cost-model profiles."""

    def __init__(
        self,
        gpu: GPUSpec = RTX4090,
        candidates: Sequence[str] = _SPARSE_CANDIDATES,
        dense_weights_available: bool = False,
        verify: bool = False,
    ):
        if not candidates:
            raise ValueError("need at least one candidate kernel")
        self.gpu = gpu
        #: When True every candidate is costed *with* its ABFT
        #: verification pass (checksum-row product + output column
        #: reduction), so the selection reflects what verify mode
        #: actually pays — the overhead is shape-dependent and can flip
        #: a near-tie.
        self.verify = verify
        names = list(candidates)
        if dense_weights_available and "cublas_tc" not in names:
            names.append("cublas_tc")
        from . import make_kernel  # deferred: avoids a package cycle

        self._kernels: Dict[str, SpMMKernel] = {
            name: make_kernel(name) for name in names
        }
        self._cache: Dict[Tuple, DispatchDecision] = {}

    def select(self, problem: SpMMProblem) -> DispatchDecision:
        """Profile all candidates; return the fastest with its margin."""
        key = (
            problem.m, problem.k, problem.n, problem.sparsity,
            problem.block_occupancy, problem.sparta_residual_nnz,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        timed = sorted(
            (
                (self._costed(kernel, problem), name)
                for name, kernel in self._kernels.items()
            ),
            key=lambda pair: pair[0].time_s,
        )
        best_profile, best_name = timed[0]
        runner = timed[1] if len(timed) > 1 else None
        decision = DispatchDecision(
            kernel_name=best_name,
            profile=best_profile,
            runner_up=runner[1] if runner else None,
            runner_up_time_s=runner[0].time_s if runner else None,
        )
        self._cache[key] = decision
        return decision

    def _costed(self, kernel: SpMMKernel, problem: SpMMProblem) -> KernelProfile:
        """The candidate's profile, plus modelled verify time if on."""
        profile = kernel.profile(problem, self.gpu)
        if not self.verify:
            return profile
        from ..integrity.abft import verification_cost_frac  # no cycle

        frac = verification_cost_frac(problem.m, problem.k, problem.n)
        return replace(profile, time_s=profile.time_s * (1.0 + frac))

    def kernel_for(self, problem: SpMMProblem) -> SpMMKernel:
        """The functional kernel instance backing the selection."""
        return self._kernels[self.select(problem).kernel_name]
