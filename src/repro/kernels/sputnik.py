"""Sputnik — CUDA-core CSR SpMM (Gale et al., SC'20).

Sputnik applies one-dimensional tiling over CSR rows with reverse-offset
memory alignment and vector loads; it is the strongest CUDA-core SpMM for
deep-learning sparsity, but it forgoes Tensor Cores entirely and pays
CSR's 6-bytes-per-non-zero weight traffic (Eq. 3) — at 50 % sparsity
that is *1.5x the dense matrix*, which is why it trails cuBLAS on LLM
shapes (paper Fig. 10).
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix, csr_storage_bytes
from ..gpu.simulator import Traffic, Work
from .base import SpMMKernel, SpMMProblem

__all__ = ["SputnikKernel", "csr_spmm"]


def csr_spmm(w: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Row-parallel CSR SpMM: each row gathers its columns of ``X`` and
    accumulates — the access pattern Sputnik's 1-D tiling vectorises."""
    if w.k != x.shape[0]:
        raise ValueError(f"inner dimensions disagree: W is {w.shape}, X is {x.shape}")
    x32 = np.asarray(x, dtype=np.float16).astype(np.float32)
    out = np.zeros((w.m, x32.shape[1]), dtype=np.float32)
    row_ids = np.repeat(np.arange(w.m), np.diff(w.row_ptr.astype(np.int64)))
    contributions = w.values.astype(np.float32)[:, None] * x32[w.col_idx]
    np.add.at(out, row_ids, contributions)
    return out


class SputnikKernel(SpMMKernel):
    """CSR SpMM on CUDA cores with 1-D row tiling."""

    name = "sputnik"

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        return csr_spmm(CSRMatrix.from_dense(w_dense), x)

    def _uses_split_k(self) -> bool:
        return False

    def _grid_blocks(self, problem: SpMMProblem, split_k: int) -> int:
        # 1-D row tiling: one thread block per 8-row strip.
        # Row-parallel decomposition; split_k stays 1 for this kernel.
        return max(1, -(-problem.m // 8)) * split_k

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        return Traffic(
            weight_bytes=float(csr_storage_bytes(problem.m, problem.nnz)),
            activation_bytes=self._activation_bytes(problem),
            output_bytes=self._output_bytes(problem),
        )

    def _work(self, problem: SpMMProblem) -> Work:
        # Only surviving values are multiplied (the one upside of skipping
        # Tensor Cores), plus per-value index handling.
        return Work(
            cuda_flops=problem.sparse_flops,
            decode_values=float(problem.nnz),
        )
