"""SpMM/GEMM kernels: the paper's contribution and all its baselines.

Each kernel pairs a functional numpy implementation of its real algorithm
(validated against dense matmul) with a cost-model profile on a simulated
GPU.  ``KERNELS`` maps the names used in the paper's figures to factories.
"""

from typing import Callable, Dict

from .base import SpMMKernel, SpMMProblem, choose_split_k
from .cublas import CuBLASKernel
from .cusparse import CuSparseKernel
from .dispatch import DispatchDecision, KernelDispatcher
from .dynamic import ActivationSliceMask, DynamicSpInferKernel, relu_sparsify
from .flash_llm import FlashLLMKernel
from .parallel_spmm import column_parallel_spmm, row_parallel_spmm
from .smat import SMaTKernel
from .sparta_kernel import SparTAKernel
from .spinfer import SpInferKernel
from .sputnik import SputnikKernel

__all__ = [
    "ActivationSliceMask",
    "DynamicSpInferKernel",
    "KERNELS",
    "relu_sparsify",
    "DispatchDecision",
    "KernelDispatcher",
    "column_parallel_spmm",
    "row_parallel_spmm",
    "CuBLASKernel",
    "CuSparseKernel",
    "FlashLLMKernel",
    "SMaTKernel",
    "SpInferKernel",
    "SpMMKernel",
    "SpMMProblem",
    "SparTAKernel",
    "SputnikKernel",
    "choose_split_k",
    "make_kernel",
]

#: Kernel factories keyed by the names the paper's figures use.
KERNELS: Dict[str, Callable[[], SpMMKernel]] = {
    "cublas_tc": CuBLASKernel,
    "spinfer": SpInferKernel,
    "spinfer_no_smbd": lambda: SpInferKernel(variant="no_smbd"),
    "spinfer_no_async": lambda: SpInferKernel(variant="no_async"),
    "flash_llm": FlashLLMKernel,
    "sparta": SparTAKernel,
    "sputnik": SputnikKernel,
    "cusparse": CuSparseKernel,
    "smat": SMaTKernel,
}


def make_kernel(name: str) -> SpMMKernel:
    """Instantiate a kernel by figure name."""
    try:
        factory = KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
    return factory()
