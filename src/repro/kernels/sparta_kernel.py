"""SparTA's composed execution: sparse Tensor Cores + CUDA-core residual.

SparTA (OSDI '22) splits the weight matrix into a 2:4 semi-structured
part, executed on Sparse Tensor Cores (which skip half the mma math), and
a CSR residual of the overflow non-zeros, executed concurrently on CUDA
cores; a final merge adds the partials.  The structured operand is dense
in its compressed form — ``(2B + B/4) * M * K / 2`` bytes irrespective of
the true sparsity — which caps SparTA's gains near break-even around
50 % (paper Figs. 1, 10).
"""

from __future__ import annotations

import numpy as np

from ..formats.sparta import (
    SparTAMatrix,
    expected_residual_nnz,
    sparta_storage_bytes,
)
from ..gpu.simulator import Traffic, Work
from .base import SpMMKernel, SpMMProblem
from .sputnik import csr_spmm

__all__ = ["SparTAKernel"]


class SparTAKernel(SpMMKernel):
    """2:4 + CSR composed SpMM."""

    name = "sparta"

    def run(self, w_dense: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._check_operands(w_dense, x)
        w = SparTAMatrix.from_dense(w_dense)
        return self.run_encoded(w, x)

    def run_encoded(self, w: SparTAMatrix, x: np.ndarray) -> np.ndarray:
        """Execute the two parts and merge, as SparTA's runtime does."""
        if w.k != x.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: W is {w.shape}, X is {x.shape}"
            )
        x32 = np.asarray(x, dtype=np.float16).astype(np.float32)

        # Sparse-TC part: expand the 2:4 compressed operand by metadata
        # (what the sparse mma does internally) and multiply.
        m, k = w.shape
        pk = -(-k // 4) * 4
        structured = np.zeros((m, pk), dtype=np.float32)
        vals = w.structured_values.reshape(m, pk // 4, 2).astype(np.float32)
        meta = w.structured_meta.reshape(m, pk // 4, 2).astype(np.intp)
        group_base = np.arange(pk // 4, dtype=np.intp) * 4
        cols = group_base[None, :, None] + meta
        rows = np.broadcast_to(np.arange(m, dtype=np.intp)[:, None, None], cols.shape)
        present = vals != 0
        structured[rows[present], cols[present]] = vals[present]
        out = structured[:, :k] @ x32

        # CUDA-core residual part, then merge.
        out += csr_spmm(w.residual, x)
        return out

    def _traffic(self, problem: SpMMProblem) -> Traffic:
        residual = problem.sparta_residual_nnz
        if residual is None:
            residual = int(
                round(expected_residual_nnz(problem.m, problem.k, problem.sparsity))
            )
        weight = float(sparta_storage_bytes(problem.m, problem.k, residual))
        # The merge re-reads and rewrites the output panel once.
        merge = 2.0 * self._output_bytes(problem)
        return Traffic(
            weight_bytes=weight,
            activation_bytes=2.0 * self._activation_bytes(problem),  # both parts read X
            output_bytes=self._output_bytes(problem),
            workspace_bytes=merge,
        )

    def _work(self, problem: SpMMProblem) -> Work:
        residual = problem.sparta_residual_nnz
        if residual is None:
            residual = int(
                round(expected_residual_nnz(problem.m, problem.k, problem.sparsity))
            )
        # Sparse Tensor Cores skip half the mma math in principle; in
        # practice cuSPARSELt realises ~1.25x effective throughput over
        # the dense path once metadata handling is paid.
        return Work(
            tc_flops=problem.dense_flops / 1.25,
            cuda_flops=2.0 * residual * problem.n,
            decode_values=float(residual),
        )
