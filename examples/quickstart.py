#!/usr/bin/env python3
"""Quickstart: encode a pruned weight matrix and run SpInfer SpMM.

Walks the minimal SpInfer pipeline:

1. prune a dense FP16 weight matrix to 60 % unstructured sparsity,
2. encode it with Tensor-Core-Aware Bitmap Encoding (TCA-BME),
3. execute the SpInfer SpMM kernel against an activation panel,
4. verify the result and inspect the predicted on-GPU profile.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import encode
from repro.gpu import RTX4090
from repro.kernels import SpMMProblem, make_kernel
from repro.pruning import magnitude_prune

M, K, N = 4096, 4096, 16  # one decode-phase linear layer
SPARSITY = 0.6


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A dense layer weight, pruned to 60% (Wanda-level) sparsity.
    dense = rng.standard_normal((M, K)).astype(np.float16)
    pruned = magnitude_prune(dense, SPARSITY)
    print(f"weight matrix: {M}x{K}, sparsity {SPARSITY:.0%}")

    # 2. TCA-BME encoding: bitmaps instead of per-element indices.
    encoded = encode(pruned)
    encoded.validate()
    dense_mb = 2 * M * K / 1e6
    enc_mb = encoded.storage_bytes() / 1e6
    print(f"dense storage:   {dense_mb:8.2f} MB")
    print(f"TCA-BME storage: {enc_mb:8.2f} MB  (CR = {encoded.compression_ratio():.2f}x)")

    # 3. SpMM: decode via Shared Memory Bitmap Decoding and multiply.
    x = rng.standard_normal((K, N)).astype(np.float16)
    kernel = make_kernel("spinfer")
    out = kernel.run_encoded(encoded, x)

    # 4. Verify against a dense reference and show the simulated profile.
    ref = pruned.astype(np.float32) @ x.astype(np.float32)
    max_err = float(np.abs(out - ref).max())
    print(f"max abs error vs dense matmul: {max_err:.2e}")
    assert max_err < 1e-3

    stats = kernel.last_decode_stats
    print(
        f"SMBD work: {stats.popcount_ops} PopCounts, "
        f"{stats.masked_popcount_ops} MaskedPopCounts, "
        f"{stats.values_decoded} values decoded"
    )

    problem = SpMMProblem(m=M, k=K, n=N, sparsity=SPARSITY)
    spinfer_profile = kernel.profile(problem, RTX4090)
    cublas_profile = make_kernel("cublas_tc").profile(problem, RTX4090)
    print(
        f"predicted on RTX4090: SpInfer {spinfer_profile.time_us:.0f} us vs "
        f"cuBLAS {cublas_profile.time_us:.0f} us "
        f"({cublas_profile.time_s / spinfer_profile.time_s:.2f}x speedup)"
    )


if __name__ == "__main__":
    main()
