#!/usr/bin/env python3
"""Simulate deploying a sparse OPT model across inference frameworks.

Answers the deployment questions the paper's Figs. 13-15 answer on real
hardware: what throughput does each framework reach, how much memory
does it need, which configurations OOM, and how many GPUs do you
actually need once TCA-BME halves the weight footprint?

Run:  python examples/serving_simulation.py
"""

from repro.bench import format_table
from repro.llm import InferenceConfig, simulate_inference

MODEL = "opt-13b"
GPU = "RTX4090"
FRAMEWORKS = (
    ("spinfer", 0.6),
    ("flash-llm", 0.6),
    ("fastertransformer", 0.0),
    ("deepspeed", 0.0),
)


def throughput_table() -> None:
    print(f"{MODEL} on 2x {GPU}: generation throughput (prompt 64, output 256)")
    rows = []
    for batch in (8, 16, 32):
        for fw, sparsity in FRAMEWORKS:
            r = simulate_inference(InferenceConfig(
                model=MODEL, framework=fw, gpu=GPU, num_gpus=2,
                batch_size=batch, prompt_len=64, output_len=256,
                sparsity=sparsity,
            ))
            rows.append([
                batch, fw,
                "OOM" if r.oom else f"{r.tokens_per_second:.0f}",
                f"{r.memory_gb:.1f}",
                f"{r.decode.linear_s:.2f}",
                f"{r.decode.attention_s:.2f}",
                f"{r.decode.comm_s:.2f}",
            ])
    print(format_table(
        ["batch", "framework", "tokens/s", "mem GB/GPU", "SpMM/GEMM s", "MHA s", "COMM s"],
        rows,
    ))
    print()


def oom_walls() -> None:
    """How far can each framework push the output length on ONE GPU?"""
    print(f"{MODEL} on ONE {GPU} (batch 8): longest feasible output")
    rows = []
    for fw, sparsity in FRAMEWORKS:
        longest = None
        for out_len in (64, 128, 256, 512, 1024, 2048):
            r = simulate_inference(InferenceConfig(
                model=MODEL, framework=fw, gpu=GPU, num_gpus=1,
                batch_size=8, prompt_len=64, output_len=out_len,
                sparsity=sparsity,
            ))
            if r.oom:
                break
            longest = out_len
        rows.append([fw, longest if longest else "does not fit at all"])
    print(format_table(["framework", "max output tokens"], rows))
    print()
    print(
        "SpInfer's TCA-BME weights fit OPT-13B on a single 24 GB card with\n"
        "room for long generations; dense frameworks need a second GPU."
    )


def gpu_count_planning() -> None:
    """Minimum GPUs per framework for OPT-30B at batch 16, output 256."""
    print("\nopt-30b: minimum GPU count (batch 16, output 256)")
    rows = []
    for fw, sparsity in FRAMEWORKS:
        needed = None
        for gpus in (1, 2, 4, 8):
            r = simulate_inference(InferenceConfig(
                model="opt-30b", framework=fw, gpu=GPU, num_gpus=gpus,
                batch_size=16, prompt_len=64, output_len=256,
                sparsity=sparsity,
            ))
            if not r.oom:
                needed = gpus
                rows.append([fw, gpus, f"{r.tokens_per_second:.0f}"])
                break
        if needed is None:
            rows.append([fw, ">8", "-"])
    print(format_table(["framework", "GPUs needed", "tokens/s"], rows))


def main() -> None:
    throughput_table()
    oom_walls()
    gpu_count_planning()


if __name__ == "__main__":
    main()
