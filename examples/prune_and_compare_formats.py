#!/usr/bin/env python3
"""Prune an LLM layer with three algorithms and compare sparse formats.

Reproduces, on one synthetic OPT-13B FFN layer, the storage study behind
paper Fig. 3: prune with magnitude / Wanda / SparseGPT, then encode the
result in every supported sparse format and compare actual byte counts,
compression ratios, and reconstruction quality of the pruners.

Run:  python examples/prune_and_compare_formats.py
"""

import numpy as np

from repro.bench import format_table
from repro.formats import FORMATS, encode_as
from repro.pruning import (
    magnitude_prune,
    measured_sparsity,
    sparsegpt_prune,
    synthetic_activations,
    wanda_prune,
)

M, K = 2048, 512  # a scaled-down FFN projection (fc2-like)
SPARSITY = 0.6


def reconstruction_error(original, pruned, activations):
    """Output-space error over a calibration batch — the metric pruning
    papers report (lower is better)."""
    ref = activations @ original.astype(np.float64).T
    out = activations @ pruned.astype(np.float64).T
    return float(np.linalg.norm(out - ref) / np.linalg.norm(ref))


def main() -> None:
    rng = np.random.default_rng(1)
    weights = rng.standard_normal((M, K)).astype(np.float16)
    acts = synthetic_activations(K, samples=256, outlier_scale=1.5, seed=2)

    # --- pruning algorithms ---------------------------------------------------
    pruned = {
        "magnitude": magnitude_prune(weights, SPARSITY, per_row=True),
        "wanda": wanda_prune(weights, SPARSITY, acts),
        "sparsegpt": sparsegpt_prune(weights, SPARSITY, acts, block_size=64),
    }
    rows = []
    for name, w in pruned.items():
        rows.append(
            [
                name,
                f"{measured_sparsity(w):.1%}",
                f"{reconstruction_error(weights, w, acts):.4f}",
            ]
        )
    print("Pruning algorithms at 60% sparsity")
    print(format_table(["algorithm", "sparsity", "relative output error"], rows))
    print()

    # --- sparse formats on the Wanda-pruned matrix ----------------------------
    w = pruned["wanda"]
    dense_bytes = 2 * M * K
    rows = []
    for fmt in sorted(FORMATS):
        enc = encode_as(fmt, w)
        assert np.array_equal(enc.to_dense(), w), fmt  # exact round trip
        rows.append(
            [
                fmt,
                enc.storage_bytes(),
                f"{enc.compression_ratio():.3f}",
                "saves memory" if enc.compression_ratio() > 1 else "INFLATES",
            ]
        )
    rows.sort(key=lambda r: r[1])
    print(f"Sparse formats on the Wanda-pruned matrix (dense = {dense_bytes} B)")
    print(format_table(["format", "bytes", "CR", "verdict"], rows))
    print()
    print(
        "TCA-BME is the only format with CR comfortably above 1 at this\n"
        "sparsity — CSR/COO inflate storage, Tiled-CSL roughly breaks even."
    )


if __name__ == "__main__":
    main()
