#!/usr/bin/env python3
"""Tour of the extensions: quantization, cross-accelerator tiling,
kernel dispatch and weight offloading.

Everything here is SpInfer *beyond* the paper's evaluation — each piece
quantifies a claim the paper makes in prose (Sections 2.3 and 6).

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import encode
from repro.core.quant import QuantizedTCABME
from repro.gpu import RTX4090
from repro.gpu.accelerators import ACCELERATORS, cross_accelerator_cr
from repro.kernels import KernelDispatcher, SpMMProblem
from repro.llm.offloading import plan_offload

SPARSITY = 0.6


def quantization_study() -> None:
    print("1. Quantization composes with bitmap indexing (paper 2.3)")
    rng = np.random.default_rng(0)
    w = rng.standard_normal((1024, 1024)).astype(np.float16)
    w[rng.random((1024, 1024)) < SPARSITY] = 0
    rows = [["fp16", encode(w).compression_ratio(), "-"]]
    for bits in (8, 4):
        q = QuantizedTCABME.from_dense(w, bits=bits)
        rows.append([f"int{bits}", q.compression_ratio(),
                     f"{q.quantization_error():.4f}"])
    print(format_table(["values", "CR", "value RMS error"], rows))
    print()


def cross_accelerator_study() -> None:
    print("2. TCA-BME retargets to other matrix units (paper 6)")
    crs = cross_accelerator_cr(4096, 4096, SPARSITY)
    rows = []
    for name, accel in ACCELERATORS.items():
        cfg = accel.tile_config()
        rows.append([
            name, accel.unit_name,
            f"{cfg.bt_h}x{cfg.bt_w}", f"{cfg.tt_h}x{cfg.tt_w}",
            f"{crs[name]:.3f}",
        ])
    print(format_table(
        ["accelerator", "matrix unit", "bitmap tile", "unit tile", "CR@60%"],
        rows,
    ))
    print("CR is tiling-invariant: the bitmap overhead is 1 bit/element "
          "regardless of tile shape.\n")


def dispatch_study() -> None:
    print("3. Cost-model kernel dispatch (Figs. 10/11/16 as one policy)")
    dispatcher = KernelDispatcher(gpu=RTX4090, dense_weights_available=True)
    cases = [
        ("decode step", SpMMProblem(m=28672, k=8192, n=16, sparsity=0.6)),
        ("prefill GEMM", SpMMProblem(m=28672, k=8192, n=8192, sparsity=0.6)),
        ("scientific matrix",
         SpMMProblem(m=16384, k=16384, n=16, sparsity=0.999,
                     block_occupancy=0.05)),
    ]
    rows = []
    for label, prob in cases:
        d = dispatcher.select(prob)
        rows.append([label, d.kernel_name, f"{d.profile.time_us:.0f}",
                     f"{d.margin:.2f}x"])
    print(format_table(["workload", "chosen kernel", "time us", "margin"], rows))
    print()


def offloading_study() -> None:
    print("4. Offloaded OPT-66B on one RTX4090 (paper 2.3)")
    rows = []
    for fmt, sparsity in (("dense", 0.0), ("tca-bme", SPARSITY)):
        plan = plan_offload("opt-66b", fmt, sparsity, "RTX4090",
                            batch_size=8, context_len=512)
        rows.append([fmt, plan.resident_layers, plan.streamed_layers,
                     f"{plan.streamed_bytes_per_step / 1e9:.1f}"])
    print(format_table(
        ["weights", "layers on GPU", "layers streamed", "PCIe GB/step"], rows
    ))
    print("Compression pins 2.4x more layers and shrinks every streamed byte.")


def main() -> None:
    quantization_study()
    cross_accelerator_study()
    dispatch_study()
    offloading_study()


if __name__ == "__main__":
    main()
