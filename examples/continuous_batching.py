#!/usr/bin/env python3
"""Serve a Poisson request stream with continuous batching.

Tests the paper's orthogonality claim ("our work ... can complement and
improve [serving systems'] performance"): the same request trace is
served by each framework under Orca-style continuous batching on one
RTX4090.  SpInfer wins twice — faster decode steps AND more KV-cache
headroom (TCA-BME weights), which admits a larger running batch.

Run:  python examples/continuous_batching.py
"""

from repro.bench import format_table
from repro.llm.serving import compare_frameworks, poisson_workload


def main() -> None:
    workload = poisson_workload(
        num_requests=32, arrival_rate=1.5, prompt_len=64, output_len=128, seed=0
    )
    print("workload: 32 requests, Poisson arrivals at 1.5 req/s, "
          "prompt 64, output 128")
    print("server: opt-13b on ONE RTX4090, continuous batching\n")

    results = compare_frameworks(workload, model="opt-13b", num_gpus=1,
                                 max_batch=32)
    rows = []
    for fw, stats in sorted(results.items()):
        rows.append([
            fw,
            f"{stats.throughput_tokens_per_s:.0f}",
            f"{stats.mean_latency_s:.1f}",
            f"{stats.latency_percentile(95):.1f}",
            stats.peak_batch,
            f"{stats.kv_budget_bytes / 1e9:.1f}",
        ])
    print(format_table(
        ["framework", "tokens/s", "mean lat s", "p95 lat s", "peak batch", "KV budget GB"],
        rows,
    ))
    print()
    missing = {"fastertransformer", "deepspeed"} - set(results)
    if missing:
        print(f"not shown (model does not fit 1 GPU dense): {sorted(missing)}")


if __name__ == "__main__":
    main()
