#!/usr/bin/env python3
"""Generate text-tokens with a pruned transformer running on SpInfer kernels.

The strongest form of the paper's integration claim: after pruning, the
*same model* — bit-for-bit the same weights — executes through TCA-BME +
SMBD and produces *identical tokens* to the dense reference, while its
layer weights occupy half the memory.

Run:  python examples/tiny_llm_generation.py
"""

import numpy as np

from repro.bench import format_table
from repro.llm.functional_model import FunctionalTransformer, TinyConfig

SPARSITY = 0.6
PROMPT = np.array([11, 42, 7, 300, 3, 250], dtype=np.int64)
NUM_TOKENS = 16


def main() -> None:
    config = TinyConfig(vocab_size=512, num_layers=2, hidden_size=64,
                        num_heads=4, ffn_size=256)
    model = FunctionalTransformer(config, seed=0)
    model.prune(SPARSITY, method="magnitude")
    print(f"model: {config.num_layers} layers, hidden {config.hidden_size}, "
          f"pruned to {SPARSITY:.0%} sparsity\n")

    rows = []
    tokens_by_backend = {}
    for backend in ("dense", "spinfer", "flash-llm"):
        model.set_backend(backend)
        tokens = model.generate(PROMPT, NUM_TOKENS)
        tokens_by_backend[backend] = tokens
        rows.append([
            backend,
            model.layer_weight_bytes(),
            " ".join(map(str, tokens[:8])) + " ...",
        ])

    print(format_table(["backend", "layer weight bytes", "generated tokens"], rows))
    print()

    assert tokens_by_backend["spinfer"] == tokens_by_backend["dense"]
    assert tokens_by_backend["flash-llm"] == tokens_by_backend["dense"]
    print("all backends generated IDENTICAL tokens — sparse execution is exact.")

    dense_b = dict(zip([r[0] for r in rows], [r[1] for r in rows]))["dense"]
    spinfer_b = dict(zip([r[0] for r in rows], [r[1] for r in rows]))["spinfer"]
    print(f"TCA-BME layer weights: {spinfer_b / dense_b:.1%} of dense "
          f"({dense_b} -> {spinfer_b} bytes).")


if __name__ == "__main__":
    main()
