#!/usr/bin/env python3
"""Explore SpMM kernel behaviour across sparsity, batch size and GPUs.

An interactive-style tour of the cost model: for a chosen weight shape it
prints (a) the roofline placement of each format, (b) per-kernel profiles
with Nsight-style counters, and (c) the decode-vs-prefill crossover that
motivates disaggregated serving (paper Fig. 16).

Run:  python examples/kernel_explorer.py [M] [K]
"""

import sys

from repro.bench import format_table
from repro.formats.analytic import compression_ratio
from repro.gpu import A6000, RTX4090, ci_gemm, ci_spmm, roofline_point
from repro.kernels import KERNELS, SpMMProblem, make_kernel

DEFAULT_M, DEFAULT_K = 28672, 8192  # the paper's running example (LLaMA2-70B FFN)
SPARSITY = 0.6


def roofline_table(m: int, k: int) -> None:
    print(f"Roofline placement at N=16, sparsity {SPARSITY:.0%} (RTX4090)")
    rows = []
    gemm_pt = roofline_point("dense gemm", ci_gemm(m, 16), RTX4090)
    rows.append(["dense gemm", f"{gemm_pt.ci:.1f}", f"{gemm_pt.attainable_tflops:.1f}",
                 "memory" if gemm_pt.memory_bound else "compute"])
    for fmt in ("csr", "tiled-csl", "sparta", "tca-bme", "optimal"):
        cr = compression_ratio(fmt, m, k, SPARSITY)
        pt = roofline_point(fmt, ci_spmm(m, 16, cr), RTX4090)
        rows.append([fmt, f"{pt.ci:.1f}", f"{pt.attainable_tflops:.1f}",
                     "memory" if pt.memory_bound else "compute"])
    print(format_table(["operand format", "CI (flop/elem)", "attainable TF/s", "bound"], rows))
    print()


def kernel_profiles(m: int, k: int) -> None:
    problem = SpMMProblem(m=m, k=k, n=16, sparsity=SPARSITY)
    for gpu in (RTX4090, A6000):
        rows = []
        base = make_kernel("cublas_tc").profile(problem, gpu).time_s
        for name in sorted(KERNELS):
            if name.startswith("spinfer_"):
                continue  # ablation variants — see tab01 bench
            p = make_kernel(name).profile(problem, gpu)
            rows.append([
                name,
                f"{p.time_us:.0f}",
                f"{base / p.time_s:.2f}x",
                f"{p.dram_bytes / 1e6:.0f}",
                f"{p.bandwidth_utilization:.0%}",
                f"{p.tc_utilization:.0%}",
                p.registers_per_thread,
            ])
        rows.sort(key=lambda r: float(r[1]))
        print(f"Kernel profiles on {gpu.name} (M={m}, K={k}, N=16, s={SPARSITY:.0%})")
        print(format_table(
            ["kernel", "time us", "vs cuBLAS", "DRAM MB", "BW util", "TC util", "regs"],
            rows,
        ))
        print()


def prefill_crossover(m: int, k: int) -> None:
    spinfer = make_kernel("spinfer")
    cublas = make_kernel("cublas_tc")
    rows = []
    for n in (8, 16, 64, 256, 1024, 4096):
        prob = SpMMProblem(m=m, k=k, n=n, sparsity=SPARSITY)
        speedup = cublas.profile(prob, RTX4090).time_s / spinfer.profile(prob, RTX4090).time_s
        regime = "decode (SpInfer wins)" if speedup > 1 else "prefill (cuBLAS wins)"
        rows.append([n, f"{speedup:.2f}x", regime])
    print("Decode vs prefill crossover (paper Fig. 16)")
    print(format_table(["N (batch x seq)", "SpInfer speedup", "regime"], rows))


def main() -> None:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_M
    k = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_K
    roofline_table(m, k)
    kernel_profiles(m, k)
    prefill_crossover(m, k)


if __name__ == "__main__":
    main()
